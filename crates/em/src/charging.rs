//! Empirical wireless charging power model.
//!
//! The WRSN charging literature (and this paper's system model) uses the
//! empirical fit
//!
//! ```text
//! P(d) = α / (d + β)²      for d ≤ d_max,   0 otherwise
//! ```
//!
//! for the DC power a node harvests from a charger at distance `d`. This module
//! provides that model ([`ChargeModel`]) plus the free-space Friis model
//! ([`friis_power`]) from which it is fitted.

use serde::{Deserialize, Serialize};

use crate::constants;
use crate::error::{positive, EmError};

/// Free-space Friis received power, in watts.
///
/// `P_rx = P_tx · G_tx · G_rx · (λ / 4πd)²`. Diverges as `d → 0`, so callers
/// should clamp `d` to the antenna near-field boundary; [`ChargeModel`] does
/// this via its `β` offset.
pub fn friis_power(tx_power_w: f64, tx_gain: f64, rx_gain: f64, wavelength_m: f64, d: f64) -> f64 {
    if d <= 0.0 {
        return f64::INFINITY;
    }
    let k = wavelength_m / (4.0 * std::f64::consts::PI * d);
    tx_power_w * tx_gain * rx_gain * k * k
}

/// The empirical charging power model `P(d) = α/(d+β)²` with a cut-off range.
///
/// # Example
///
/// ```
/// use wrsn_em::ChargeModel;
///
/// let m = ChargeModel::powercast();
/// assert!(m.power_at(0.5) > m.power_at(1.0));
/// assert_eq!(m.power_at(100.0), 0.0); // beyond range
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargeModel {
    alpha: f64,
    beta: f64,
    max_range_m: f64,
}

impl ChargeModel {
    /// Creates a model with the given `α` (W·m²), `β` (m) and cut-off range (m).
    ///
    /// # Errors
    ///
    /// Returns [`EmError`] if any parameter is non-finite or not strictly
    /// positive.
    pub fn new(alpha: f64, beta: f64, max_range_m: f64) -> Result<Self, EmError> {
        Ok(ChargeModel {
            alpha: positive("alpha", alpha)?,
            beta: positive("beta", beta)?,
            max_range_m: positive("max_range_m", max_range_m)?,
        })
    }

    /// A model representative of a Powercast TX91501-class 3 W transmitter:
    /// `α = 0.25 W·m²`, `β = 0.5 m`, effective range 5 m, so `P(0) = 1 W` and
    /// `P(1 m) ≈ 0.11 W`.
    pub fn powercast() -> Self {
        ChargeModel {
            alpha: 0.25,
            beta: 0.5,
            max_range_m: 5.0,
        }
    }

    /// The `α` parameter, in W·m².
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The `β` near-field offset, in metres.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Cut-off range beyond which no power is harvested, in metres.
    pub fn max_range(&self) -> f64 {
        self.max_range_m
    }

    /// Harvested DC power at distance `d` metres, in watts.
    ///
    /// Returns `0.0` beyond [`ChargeModel::max_range`] or for negative `d`.
    pub fn power_at(&self, d: f64) -> f64 {
        if !(0.0..=self.max_range_m).contains(&d) {
            return 0.0;
        }
        let s = d + self.beta;
        self.alpha / (s * s)
    }

    /// Field amplitude (in `√W`, see [`crate::Wave`]) at distance `d`, such
    /// that a lone charger delivers exactly [`ChargeModel::power_at`].
    pub fn amplitude_at(&self, d: f64) -> f64 {
        self.power_at(d).sqrt()
    }

    /// Energy (J) delivered over `duration_s` seconds of charging at fixed
    /// distance `d`.
    pub fn energy_over(&self, d: f64, duration_s: f64) -> f64 {
        self.power_at(d) * duration_s.max(0.0)
    }

    /// Time (s) needed to deliver `energy_j` joules at distance `d`, or `None`
    /// if no power is received there.
    pub fn time_to_deliver(&self, d: f64, energy_j: f64) -> Option<f64> {
        let p = self.power_at(d);
        if p <= 0.0 {
            None
        } else {
            Some(energy_j.max(0.0) / p)
        }
    }
}

impl Default for ChargeModel {
    fn default() -> Self {
        ChargeModel::powercast()
    }
}

/// Generates ideal `(distance, power)` samples from the Friis model using the
/// crate's default hardware constants; the Section-II style "measurement"
/// campaign adds noise to these and then fits a [`ChargeModel`] to them.
pub fn friis_samples(distances_m: &[f64]) -> Vec<(f64, f64)> {
    let lambda = constants::wavelength(constants::ISM_915MHZ);
    distances_m
        .iter()
        .map(|&d| {
            (
                d,
                constants::DEFAULT_RECTIFIER_EFFICIENCY
                    * friis_power(
                        constants::DEFAULT_TX_POWER_W,
                        constants::DEFAULT_TX_GAIN,
                        constants::DEFAULT_RX_GAIN,
                        lambda,
                        d,
                    ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_decreases_with_distance() {
        let m = ChargeModel::powercast();
        let mut prev = m.power_at(0.0);
        for k in 1..=50 {
            let d = k as f64 * 0.1;
            let p = m.power_at(d);
            assert!(p <= prev, "power not monotone at d={d}");
            prev = p;
        }
    }

    #[test]
    fn power_zero_beyond_range_and_for_negative_distance() {
        let m = ChargeModel::powercast();
        assert_eq!(m.power_at(5.0001), 0.0);
        assert_eq!(m.power_at(-0.1), 0.0);
    }

    #[test]
    fn powercast_delivers_one_watt_at_contact() {
        let m = ChargeModel::powercast();
        assert!((m.power_at(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplitude_squared_is_power() {
        let m = ChargeModel::powercast();
        let a = m.amplitude_at(1.5);
        assert!((a * a - m.power_at(1.5)).abs() < 1e-12);
    }

    #[test]
    fn energy_and_time_are_inverse() {
        let m = ChargeModel::powercast();
        let e = m.energy_over(1.0, 30.0);
        let t = m.time_to_deliver(1.0, e).unwrap();
        assert!((t - 30.0).abs() < 1e-9);
    }

    #[test]
    fn time_to_deliver_out_of_range_is_none() {
        let m = ChargeModel::powercast();
        assert!(m.time_to_deliver(10.0, 1.0).is_none());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ChargeModel::new(0.0, 0.5, 5.0).is_err());
        assert!(ChargeModel::new(0.25, -1.0, 5.0).is_err());
        assert!(ChargeModel::new(0.25, 0.5, f64::NAN).is_err());
    }

    #[test]
    fn friis_follows_inverse_square() {
        let p1 = friis_power(3.0, 8.0, 2.0, 0.33, 1.0);
        let p2 = friis_power(3.0, 8.0, 2.0, 0.33, 2.0);
        assert!((p1 / p2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn friis_samples_are_positive_and_decreasing() {
        let s = friis_samples(&[0.5, 1.0, 2.0]);
        assert_eq!(s.len(), 3);
        assert!(s[0].1 > s[1].1 && s[1].1 > s[2].1);
        assert!(s[2].1 > 0.0);
    }
}
