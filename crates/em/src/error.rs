//! Error types for the `wrsn-em` crate.

use std::error::Error;
use std::fmt;

/// Errors produced by physical-model constructors and the curve fitter.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EmError {
    /// A parameter that must be strictly positive was zero or negative.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A parameter was NaN or infinite.
    NonFiniteParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// The curve fitter was given fewer samples than free parameters.
    TooFewSamples {
        /// Number of samples provided.
        got: usize,
        /// Minimum number required.
        need: usize,
    },
}

impl fmt::Display for EmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            EmError::NonFiniteParameter { name } => {
                write!(f, "parameter `{name}` must be finite")
            }
            EmError::TooFewSamples { got, need } => {
                write!(f, "fit needs at least {need} samples, got {got}")
            }
        }
    }
}

impl Error for EmError {}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn positive(name: &'static str, value: f64) -> Result<f64, EmError> {
    if !value.is_finite() {
        return Err(EmError::NonFiniteParameter { name });
    }
    if value <= 0.0 {
        return Err(EmError::NonPositiveParameter { name, value });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_accepts_positive() {
        assert_eq!(positive("x", 1.5), Ok(1.5));
    }

    #[test]
    fn positive_rejects_zero_and_negative() {
        assert!(matches!(
            positive("x", 0.0),
            Err(EmError::NonPositiveParameter { name: "x", .. })
        ));
        assert!(matches!(
            positive("x", -2.0),
            Err(EmError::NonPositiveParameter { .. })
        ));
    }

    #[test]
    fn positive_rejects_nan_and_inf() {
        assert!(matches!(
            positive("x", f64::NAN),
            Err(EmError::NonFiniteParameter { .. })
        ));
        assert!(matches!(
            positive("x", f64::INFINITY),
            Err(EmError::NonFiniteParameter { .. })
        ));
    }

    #[test]
    fn display_is_informative() {
        let msg = EmError::TooFewSamples { got: 1, need: 2 }.to_string();
        assert!(msg.contains("at least 2"));
        assert!(msg.contains("got 1"));
    }
}
