//! The nonlinear superposition law — the attack's enabling physics.
//!
//! Coherent fields add as *phasors*, not as powers. For incident waves with
//! amplitudes `aᵢ` and phases `φᵢ`, the harvested power is
//!
//! ```text
//! P = |Σᵢ aᵢ·e^{jφᵢ}|²
//! ```
//!
//! which ranges from `0` (perfect destructive interference) up to `(Σᵢ aᵢ)²`
//! (perfect constructive interference). Naive energy accounting would predict
//! `Σᵢ aᵢ²`; the discrepancy between the coherent and the naive sum is exactly
//! what a Charging Spoofing Attacker exploits — and what this module quantifies.

use crate::phasor::Phasor;
use crate::wave::Wave;

/// Coherent received power of a set of waves, in watts.
///
/// Returns `|Σᵢ aᵢ·e^{jφᵢ}|²`. An empty slice yields `0.0`.
///
/// # Example
///
/// ```
/// use wrsn_em::{superposition, Wave};
///
/// let w = Wave::new(1.0, 0.0);
/// assert!((superposition::received_power(&[w, w]) - 4.0).abs() < 1e-12);
/// assert!(superposition::received_power(&[w, w.antiphase()]) < 1e-12);
/// ```
pub fn received_power(waves: &[Wave]) -> f64 {
    let sum: Phasor = waves.iter().map(Wave::phasor).sum();
    sum.power()
}

/// The power an *incoherent* (naive) model would predict: `Σᵢ aᵢ²`.
///
/// This is what a receiver's energy ledger "expects" when it is told that `n`
/// chargers are serving it; the gap to [`received_power`] is the spoofing gain.
pub fn incoherent_power(waves: &[Wave]) -> f64 {
    waves.iter().map(|w| w.solo_power()).sum()
}

/// Upper bound on coherent power: `(Σᵢ aᵢ)²`, attained when all phases align.
pub fn constructive_bound(waves: &[Wave]) -> f64 {
    let a: f64 = waves.iter().map(Wave::amplitude).sum();
    a * a
}

/// Closed-form two-wave superposition:
/// `P = a₁² + a₂² + 2·a₁·a₂·cos(Δφ)`.
///
/// This is the formula the paper's Section-II measurements fit; it is exactly
/// [`received_power`] specialised to two waves.
pub fn two_wave_power(a1: f64, a2: f64, delta_phase: f64) -> f64 {
    a1 * a1 + a2 * a2 + 2.0 * a1 * a2 * delta_phase.cos()
}

/// Cancellation depth of a wave set: `1 − P_coherent / P_incoherent`.
///
/// * `1.0` — total cancellation (the spoofing ideal),
/// * `0.0` — power adds as the naive model expects,
/// * negative — constructive interference (receiver gets *more* than naive).
///
/// Returns `0.0` for an empty or zero-power set.
pub fn cancellation_depth(waves: &[Wave]) -> f64 {
    let inc = incoherent_power(waves);
    if inc <= 0.0 {
        return 0.0;
    }
    1.0 - received_power(waves) / inc
}

/// Normalised two-wave interference pattern sampled over `Δφ ∈ [0, 2π]`.
///
/// Returns `(delta_phase, power / peak_power)` pairs with `samples` points;
/// used to regenerate the paper's "received power vs. phase offset" figure.
///
/// # Panics
///
/// Panics if `samples < 2`.
pub fn phase_sweep(a1: f64, a2: f64, samples: usize) -> Vec<(f64, f64)> {
    assert!(samples >= 2, "need at least 2 samples");
    let peak = (a1 + a2) * (a1 + a2);
    (0..samples)
        .map(|k| {
            let dphi = 2.0 * std::f64::consts::PI * k as f64 / (samples - 1) as f64;
            let p = two_wave_power(a1, a2, dphi);
            (dphi, if peak > 0.0 { p / peak } else { 0.0 })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn empty_set_has_zero_power() {
        assert_eq!(received_power(&[]), 0.0);
        assert_eq!(incoherent_power(&[]), 0.0);
        assert_eq!(cancellation_depth(&[]), 0.0);
    }

    #[test]
    fn single_wave_matches_solo_power() {
        let w = Wave::new(1.3, 0.7);
        assert!((received_power(&[w]) - w.solo_power()).abs() < 1e-12);
    }

    #[test]
    fn two_wave_formula_matches_phasor_sum() {
        for &(a1, a2, dphi) in &[(1.0, 1.0, PI), (0.5, 2.0, 0.3), (1.0, 0.8, 2.0)] {
            let waves = [Wave::new(a1, 0.0), Wave::new(a2, dphi)];
            let direct = received_power(&waves);
            let formula = two_wave_power(a1, a2, dphi);
            assert!(
                (direct - formula).abs() < 1e-10,
                "a1={a1} a2={a2} dphi={dphi}"
            );
        }
    }

    #[test]
    fn equal_amplitude_antiphase_gives_full_depth() {
        let w = Wave::new(1.0, 0.0);
        let depth = cancellation_depth(&[w, w.antiphase()]);
        assert!((depth - 1.0).abs() < 1e-12);
    }

    #[test]
    fn in_phase_gives_negative_depth() {
        let w = Wave::new(1.0, 0.0);
        // Coherent 4.0 vs incoherent 2.0 → depth = -1.
        assert!((cancellation_depth(&[w, w]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn coherent_power_never_exceeds_constructive_bound() {
        let waves = [
            Wave::new(1.0, 0.1),
            Wave::new(0.5, 2.3),
            Wave::new(2.0, -1.0),
        ];
        assert!(received_power(&waves) <= constructive_bound(&waves) + 1e-12);
    }

    #[test]
    fn phase_sweep_has_peak_at_zero_and_null_at_pi() {
        let sweep = phase_sweep(1.0, 1.0, 181);
        assert!((sweep[0].1 - 1.0).abs() < 1e-12);
        let null = sweep[90]; // Δφ = π
        assert!(null.1 < 1e-10, "null power = {}", null.1);
    }

    #[test]
    fn mismatched_amplitudes_cannot_fully_cancel() {
        let depth = cancellation_depth(&[Wave::new(1.0, 0.0), Wave::new(0.5, PI)]);
        // Residual power (1-0.5)² = 0.25, incoherent = 1.25 → depth = 0.8.
        assert!((depth - 0.8).abs() < 1e-12);
    }
}
