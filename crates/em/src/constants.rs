//! Physical constants and representative hardware parameters.
//!
//! The defaults are chosen to match the commodity WPT hardware used in the WRSN
//! charging literature (Powercast TX91501-style 915 MHz ISM-band transmitters).

/// Speed of light in vacuum, metres per second.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Carrier frequency of the 915 MHz ISM band used by commodity WPT
/// transmitters, in hertz.
pub const ISM_915MHZ: f64 = 915.0e6;

/// Wavelength of a carrier at frequency `freq_hz`, in metres.
///
/// # Example
///
/// ```
/// let lambda = wrsn_em::constants::wavelength(wrsn_em::constants::ISM_915MHZ);
/// assert!((lambda - 0.3276).abs() < 1e-3);
/// ```
pub fn wavelength(freq_hz: f64) -> f64 {
    SPEED_OF_LIGHT / freq_hz
}

/// Default transmit power of a Powercast-class charger, in watts.
pub const DEFAULT_TX_POWER_W: f64 = 3.0;

/// Default transmit antenna gain (linear, not dBi).
pub const DEFAULT_TX_GAIN: f64 = 8.0;

/// Default receive antenna gain (linear, not dBi).
pub const DEFAULT_RX_GAIN: f64 = 2.0;

/// Default RF-to-DC rectifier efficiency of the harvesting circuit.
pub const DEFAULT_RECTIFIER_EFFICIENCY: f64 = 0.65;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavelength_at_915mhz_is_about_33cm() {
        let lambda = wavelength(ISM_915MHZ);
        assert!((0.32..0.34).contains(&lambda), "lambda = {lambda}");
    }

    #[test]
    fn wavelength_scales_inversely_with_frequency() {
        assert!(wavelength(1.0e9) > wavelength(2.0e9));
        let ratio = wavelength(1.0e9) / wavelength(2.0e9);
        assert!((ratio - 2.0).abs() < 1e-12);
    }
}
