//! Complex phasor arithmetic.
//!
//! A [`Phasor`] represents the complex amplitude `a·e^{jφ}` of a monochromatic
//! wave at a point in space. Coherent fields add as phasors; harvested power is
//! proportional to the squared magnitude of the sum — the *nonlinear
//! superposition* that the Charging Spoofing Attack exploits.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A complex number in Cartesian form, used as a field phasor.
///
/// # Example
///
/// ```
/// use wrsn_em::Phasor;
///
/// let a = Phasor::from_polar(1.0, 0.0);
/// let b = Phasor::from_polar(1.0, std::f64::consts::PI);
/// assert!((a + b).magnitude() < 1e-12); // perfect cancellation
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Phasor {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Phasor {
    /// The zero phasor (no field).
    pub const ZERO: Phasor = Phasor { re: 0.0, im: 0.0 };

    /// Creates a phasor from Cartesian components.
    pub fn new(re: f64, im: f64) -> Self {
        Phasor { re, im }
    }

    /// Creates a phasor from polar form `magnitude · e^{j·phase}`.
    ///
    /// `phase` is in radians.
    pub fn from_polar(magnitude: f64, phase: f64) -> Self {
        Phasor {
            re: magnitude * phase.cos(),
            im: magnitude * phase.sin(),
        }
    }

    /// Magnitude `|z|`.
    pub fn magnitude(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`; proportional to instantaneous power.
    pub fn power(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    pub fn phase(&self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Phasor {
        Phasor::new(self.re, -self.im)
    }

    /// Multiplies by a real scalar.
    pub fn scale(&self, k: f64) -> Phasor {
        Phasor::new(self.re * k, self.im * k)
    }

    /// Rotates by `angle` radians (multiplication by `e^{j·angle}`).
    pub fn rotate(&self, angle: f64) -> Phasor {
        *self * Phasor::from_polar(1.0, angle)
    }

    /// Returns `true` if both parts are finite.
    pub fn is_finite(&self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Phasor {
    type Output = Phasor;
    fn add(self, rhs: Phasor) -> Phasor {
        Phasor::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Phasor {
    fn add_assign(&mut self, rhs: Phasor) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Phasor {
    type Output = Phasor;
    fn sub(self, rhs: Phasor) -> Phasor {
        Phasor::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for Phasor {
    type Output = Phasor;
    fn neg(self) -> Phasor {
        Phasor::new(-self.re, -self.im)
    }
}

impl Mul for Phasor {
    type Output = Phasor;
    fn mul(self, rhs: Phasor) -> Phasor {
        Phasor::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Phasor {
    type Output = Phasor;
    fn mul(self, rhs: f64) -> Phasor {
        self.scale(rhs)
    }
}

impl Sum for Phasor {
    fn sum<I: Iterator<Item = Phasor>>(iter: I) -> Phasor {
        iter.fold(Phasor::ZERO, |acc, p| acc + p)
    }
}

impl From<(f64, f64)> for Phasor {
    fn from((re, im): (f64, f64)) -> Self {
        Phasor::new(re, im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const EPS: f64 = 1e-12;

    #[test]
    fn polar_roundtrip() {
        let p = Phasor::from_polar(2.5, 0.7);
        assert!((p.magnitude() - 2.5).abs() < EPS);
        assert!((p.phase() - 0.7).abs() < EPS);
    }

    #[test]
    fn power_is_magnitude_squared() {
        let p = Phasor::new(3.0, 4.0);
        assert!((p.magnitude() - 5.0).abs() < EPS);
        assert!((p.power() - 25.0).abs() < EPS);
    }

    #[test]
    fn opposite_phases_cancel() {
        let a = Phasor::from_polar(1.0, 0.3);
        let b = Phasor::from_polar(1.0, 0.3 + PI);
        assert!((a + b).magnitude() < EPS);
    }

    #[test]
    fn in_phase_waves_quadruple_power() {
        // |a + a|² = 4|a|² — constructive interference is superlinear too.
        let a = Phasor::from_polar(1.0, 0.9);
        assert!(((a + a).power() - 4.0 * a.power()).abs() < EPS);
    }

    #[test]
    fn multiplication_adds_phases_and_multiplies_magnitudes() {
        let a = Phasor::from_polar(2.0, 0.4);
        let b = Phasor::from_polar(3.0, 1.1);
        let c = a * b;
        assert!((c.magnitude() - 6.0).abs() < 1e-10);
        assert!((c.phase() - 1.5).abs() < 1e-10);
    }

    #[test]
    fn rotate_by_quarter_turn() {
        let a = Phasor::new(1.0, 0.0);
        let r = a.rotate(FRAC_PI_2);
        assert!(r.re.abs() < EPS);
        assert!((r.im - 1.0).abs() < EPS);
    }

    #[test]
    fn sum_of_phasors() {
        let total: Phasor = (0..4)
            .map(|k| Phasor::from_polar(1.0, k as f64 * FRAC_PI_2))
            .sum();
        // Four unit phasors at 0, 90, 180, 270 degrees cancel exactly.
        assert!(total.magnitude() < 1e-10);
    }

    #[test]
    fn conj_negates_phase() {
        let p = Phasor::from_polar(1.0, 0.6);
        assert!((p.conj().phase() + 0.6).abs() < EPS);
    }

    #[test]
    fn neg_and_sub() {
        let a = Phasor::new(1.0, 2.0);
        assert_eq!(a - a, Phasor::ZERO);
        assert_eq!(-a, Phasor::new(-1.0, -2.0));
    }
}
