//! Online base-station auditing: a digital twin plus stochastic
//! challenge-response probes, scored *during* the run.
//!
//! The post-mortem detectors in `wrsn-core::detect` replay a finished trace;
//! this module is the defender made first-class. The base station maintains a
//! **digital twin** of every charging session it commissions: from the honest
//! charge model it knows the energy a session *should* have delivered
//! (`believed_j`), and from the node's drain rate it knows the residual level
//! the victim *should* report afterwards. After each session it may issue a
//! **challenge-response probe** — ask the just-served node for its residual
//! energy — and score the divergence between the believed and the measured
//! trajectory.
//!
//! Probing every session is unaffordable (each probe costs radio time and
//! base-station budget), so selection is *stochastic but deterministic*: a
//! seeded FNV-1a hash over `(seed, probe_seq, node)` decides each challenge,
//! which keeps the whole campaign byte-identical across thread and shard
//! counts and lets a probe schedule survive `World::snapshot`/`restore`
//! without carrying RNG state.
//!
//! A single failed probe is not a conviction — degraded hardware
//! ([`crate::fault`]) legitimately under-delivers — so each node keeps a
//! sliding window of its last `window_m` probe outcomes and is convicted when
//! `convict_k` of them failed. Convictions are typed alarms with the
//! simulation time they fired at (time-to-detection comes for free).
//!
//! The twin is **purely observational**: it never perturbs the trajectory, so
//! a world with an attached audit produces bit-identical physics to one
//! without (only the audit's own state differs). The probe *cost* is
//! accounted against the base station's overhead budget, not the charger's.

use serde::{Deserialize, Serialize};

use wrsn_net::NodeId;

use crate::obs::{Counter, Recorder};
use crate::store::fnv1a64;

/// Detector aggressiveness: how often to challenge, how much divergence to
/// tolerate, and how many failures convict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuditConfig {
    /// Seed for the deterministic challenge selection.
    pub seed: u64,
    /// Fraction of eligible sessions that get probed, in `[0, 1]`.
    pub probe_rate: f64,
    /// Conviction tolerance τ: a probe fails when the measured energy gain is
    /// below `τ × believed_j`. Must sit *below* the worst legitimate
    /// efficiency degradation (the default fault model degrades to 0.3 at
    /// worst) or honest-but-degraded hardware gets convicted.
    pub tolerance: f64,
    /// Failures within the window that convict a node.
    pub convict_k: usize,
    /// Sliding-window length (probes per node) the failures are counted in.
    pub window_m: usize,
    /// Sessions believed to deliver less than this are not worth a probe
    /// (decoy slivers, zero-length truncations), joules.
    pub min_audit_j: f64,
    /// Modeled cost of one challenge-response probe, joules of base-station
    /// overhead budget.
    pub probe_cost_j: f64,
    /// Overhead budget for probing; `None` is unlimited. When the budget
    /// runs dry the audit goes blind (probes stop) — aggressiveness is not
    /// free.
    pub probe_budget_j: Option<f64>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            seed: 0,
            probe_rate: 0.6,
            // Below the fault model's worst-case single degradation (0.3):
            // one degraded-but-honest session still passes.
            tolerance: 0.25,
            convict_k: 1,
            window_m: 4,
            min_audit_j: 1.0,
            probe_cost_j: 5.0,
            probe_budget_j: None,
        }
    }
}

impl AuditConfig {
    /// A lax preset: sparse probing, a forgiving tolerance, and a 2-of-4
    /// conviction rule. The ROC curve's bottom anchor — a naive CSA whose
    /// victims are each served exactly once is never convicted here.
    pub fn lax() -> Self {
        AuditConfig {
            probe_rate: 0.25,
            tolerance: 0.15,
            convict_k: 2,
            window_m: 4,
            ..AuditConfig::default()
        }
    }

    /// An aggressive preset: probe every session and demand better than half
    /// the believed energy. Catches attackers fast — and starts convicting
    /// honest sessions on fault-degraded hardware (efficiency can drop to
    /// 0.3 < 0.55), which is exactly the false-positive cost the `arms_race`
    /// experiment quantifies.
    pub fn aggressive() -> Self {
        AuditConfig {
            probe_rate: 1.0,
            tolerance: 0.55,
            convict_k: 1,
            window_m: 2,
            ..AuditConfig::default()
        }
    }

    /// The preset registered under `name` (`lax`, `default`, `aggressive`).
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "lax" => Some(AuditConfig::lax()),
            "default" => Some(AuditConfig::default()),
            "aggressive" => Some(AuditConfig::aggressive()),
            _ => None,
        }
    }

    /// Seeds the challenge selection, returning the config.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What one challenge-response probe concluded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProbeOutcome {
    /// Measured gain was at least `tolerance × believed_j`.
    Pass,
    /// Measured gain fell below the tolerance.
    Fail,
    /// The node's battery ended at capacity: an honest charge tops out, and a
    /// full battery cannot show the believed gain. Counts as a pass.
    Saturated,
    /// The node is down but holds residual charge: a hard fault (crashes keep
    /// their residual), not exhaustion under a masquerade. Counts as a pass.
    CrashExcused,
}

impl ProbeOutcome {
    /// Whether this outcome counts as a conviction-window failure.
    pub fn is_failure(self) -> bool {
        matches!(self, ProbeOutcome::Fail)
    }
}

/// One issued probe, as recorded by the twin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// The challenged node.
    pub node: NodeId,
    /// When the probe fired (the session's end), seconds.
    pub time_s: f64,
    /// Energy the twin believed the session delivered, joules.
    pub believed_j: f64,
    /// Energy gain the challenged node actually reported, joules.
    pub measured_j: f64,
    /// The verdict.
    pub outcome: ProbeOutcome,
}

/// A node convicted by the k-of-m rule: the online audit's typed alarm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conviction {
    /// The convicted node.
    pub node: NodeId,
    /// When the conviction fired, seconds — time-to-detection against the
    /// campaign start.
    pub time_s: f64,
    /// Probe failures in the window at conviction time.
    pub failures: usize,
    /// Probes in the window at conviction time.
    pub window: usize,
    /// Human-readable cause.
    pub detail: String,
}

/// Everything the world hands the twin about one completed charging session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionObservation {
    /// The served node.
    pub node: NodeId,
    /// Session end time, seconds.
    pub end_s: f64,
    /// Actual session duration, seconds.
    pub duration_s: f64,
    /// Energy the honest charge model says this session delivered, joules —
    /// the twin's expectation.
    pub believed_j: f64,
    /// The node's battery level just before the session, joules.
    pub level_before_j: f64,
    /// The node's battery level at session end, joules.
    pub level_after_j: f64,
    /// The node's battery capacity, joules.
    pub capacity_j: f64,
    /// Whether the node is alive at session end.
    pub alive: bool,
    /// The node's routing drain at session end, watts (used to reconstruct
    /// the gain the session produced net of consumption).
    pub drain_w: f64,
}

/// The base station's online audit state: digital twin + probe ledger +
/// conviction windows. Attach with [`crate::World::with_audit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditState {
    config: AuditConfig,
    /// Monotone probe-selection counter: the only randomness state, so the
    /// schedule snapshots/restores and re-executes bitwise.
    probe_seq: u64,
    /// Every probe issued, in time order.
    probes: Vec<ProbeRecord>,
    /// Per-node sliding windows of recent probe failures (`true` = failure),
    /// sized lazily by node index.
    windows: Vec<Vec<bool>>,
    /// Per-node convicted flags (a node is convicted at most once).
    convicted: Vec<bool>,
    /// Convictions in time order.
    convictions: Vec<Conviction>,
    /// Probe overhead spent so far, joules.
    spent_j: f64,
    /// Eligible sessions that were selected but not probed because the
    /// overhead budget was exhausted.
    starved: u64,
}

impl AuditState {
    /// A fresh audit with `config`.
    pub fn new(config: AuditConfig) -> Self {
        AuditState {
            config,
            probe_seq: 0,
            probes: Vec::new(),
            windows: Vec::new(),
            convicted: Vec::new(),
            convictions: Vec::new(),
            spent_j: 0.0,
            starved: 0,
        }
    }

    /// The configuration this audit runs under.
    pub fn config(&self) -> &AuditConfig {
        &self.config
    }

    /// Every probe issued so far, in time order.
    pub fn probes(&self) -> &[ProbeRecord] {
        &self.probes
    }

    /// Every conviction so far, in time order.
    pub fn convictions(&self) -> &[Conviction] {
        &self.convictions
    }

    /// Whether `node` has been convicted.
    pub fn is_convicted(&self, node: NodeId) -> bool {
        self.convicted.get(node.0).copied().unwrap_or(false)
    }

    /// Probe overhead spent so far, joules.
    pub fn spent_j(&self) -> f64 {
        self.spent_j
    }

    /// Eligible sessions skipped because the probe budget was exhausted.
    pub fn starved(&self) -> u64 {
        self.starved
    }

    /// Time of the first conviction, if any — the campaign's
    /// time-to-detection.
    pub fn first_conviction_s(&self) -> Option<f64> {
        self.convictions.first().map(|c| c.time_s)
    }

    /// Whether the deterministic selector challenges eligible session number
    /// `seq` on `node`. Pure function of `(seed, seq, node)`: no RNG state.
    fn selected(&self, seq: u64, node: NodeId) -> bool {
        let mut bytes = [0u8; 24];
        bytes[..8].copy_from_slice(&self.config.seed.to_le_bytes());
        bytes[8..16].copy_from_slice(&seq.to_le_bytes());
        bytes[16..].copy_from_slice(&(node.0 as u64).to_le_bytes());
        let h = fnv1a64(&bytes);
        // Top 53 bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < self.config.probe_rate
    }

    /// Scores one completed charging session. Called by the world at session
    /// end (serial code — deterministic at any thread/shard count). Returns
    /// the conviction this session triggered, if any.
    pub fn observe_session(
        &mut self,
        obs: &SessionObservation,
        rec: &mut dyn Recorder,
    ) -> Option<Conviction> {
        if obs.believed_j < self.config.min_audit_j {
            return None; // not worth a challenge
        }
        let seq = self.probe_seq;
        self.probe_seq += 1;
        if !self.selected(seq, obs.node) {
            return None;
        }
        if let Some(budget) = self.config.probe_budget_j {
            if self.spent_j + self.config.probe_cost_j > budget {
                self.starved += 1;
                return None; // audit is blind: overhead budget exhausted
            }
        }
        self.spent_j += self.config.probe_cost_j;
        rec.add(Counter::AuditProbes, 1);

        // The twin's expected trajectory: level_before − drain·Δt + believed.
        // The challenged node reports level_after, so the measured *gain* net
        // of its own consumption is:
        let measured_j = obs.level_after_j - obs.level_before_j + obs.drain_w * obs.duration_s;
        let outcome = if !obs.alive {
            if obs.level_after_j > 1e-6 {
                // Crash faults keep their residual; exhaustion ends at zero.
                // A downed node with charge in the tank is a hardware loss,
                // not a spoofed kill.
                ProbeOutcome::CrashExcused
            } else {
                // Died at zero *under the charger*: the strongest possible
                // divergence from the believed trajectory.
                ProbeOutcome::Fail
            }
        } else if obs.level_after_j >= obs.capacity_j * (1.0 - 1e-9) {
            // A full battery cannot show the believed gain.
            ProbeOutcome::Saturated
        } else if measured_j >= self.config.tolerance * obs.believed_j {
            ProbeOutcome::Pass
        } else {
            ProbeOutcome::Fail
        };
        self.probes.push(ProbeRecord {
            node: obs.node,
            time_s: obs.end_s,
            believed_j: obs.believed_j,
            measured_j,
            outcome,
        });
        if outcome.is_failure() {
            rec.add(Counter::AuditProbeFailures, 1);
        }

        // Slide the node's window and apply the k-of-m rule.
        let idx = obs.node.0;
        if self.windows.len() <= idx {
            self.windows.resize(idx + 1, Vec::new());
            self.convicted.resize(idx + 1, false);
        }
        let window = &mut self.windows[idx];
        window.push(outcome.is_failure());
        if window.len() > self.config.window_m {
            window.remove(0);
        }
        let failures = window.iter().filter(|&&f| f).count();
        if failures >= self.config.convict_k && !self.convicted[idx] {
            self.convicted[idx] = true;
            let conviction = Conviction {
                node: obs.node,
                time_s: obs.end_s,
                failures,
                window: window.len(),
                detail: format!(
                    "{failures}/{} probe failures; last gain {measured_j:.1} J of {:.1} J believed",
                    window.len(),
                    obs.believed_j
                ),
            };
            self.convictions.push(conviction.clone());
            rec.add(Counter::AuditConvictions, 1);
            return Some(conviction);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::NullRecorder;

    fn obs(node: usize, believed: f64, gain: f64) -> SessionObservation {
        SessionObservation {
            node: NodeId(node),
            end_s: 100.0,
            duration_s: 50.0,
            believed_j: believed,
            level_before_j: 100.0,
            level_after_j: 100.0 + gain,
            capacity_j: 1000.0,
            alive: true,
            drain_w: 0.0,
        }
    }

    fn always_probe() -> AuditConfig {
        AuditConfig {
            probe_rate: 1.0,
            ..AuditConfig::default()
        }
    }

    #[test]
    fn honest_gain_passes_and_spoofed_gain_fails() {
        let mut audit = AuditState::new(always_probe());
        audit.observe_session(&obs(0, 100.0, 98.0), &mut NullRecorder);
        audit.observe_session(&obs(1, 100.0, 0.4), &mut NullRecorder);
        assert_eq!(audit.probes()[0].outcome, ProbeOutcome::Pass);
        assert_eq!(audit.probes()[1].outcome, ProbeOutcome::Fail);
        assert!(audit.is_convicted(NodeId(1)) && !audit.is_convicted(NodeId(0)));
        assert_eq!(audit.convictions().len(), 1);
        assert_eq!(audit.first_conviction_s(), Some(100.0));
    }

    #[test]
    fn degraded_but_tolerated_gain_passes_at_default() {
        let mut audit = AuditState::new(always_probe());
        // 30% of believed: the fault model's worst single degradation.
        audit.observe_session(&obs(0, 100.0, 30.0), &mut NullRecorder);
        assert_eq!(audit.probes()[0].outcome, ProbeOutcome::Pass);
    }

    #[test]
    fn saturation_and_crash_are_excused() {
        let mut audit = AuditState::new(always_probe());
        let mut full = obs(0, 100.0, 0.0);
        full.level_after_j = 1000.0;
        audit.observe_session(&full, &mut NullRecorder);
        let mut crashed = obs(1, 100.0, 0.0);
        crashed.alive = false;
        crashed.level_after_j = 60.0;
        audit.observe_session(&crashed, &mut NullRecorder);
        let mut exhausted = obs(2, 100.0, 0.0);
        exhausted.alive = false;
        exhausted.level_after_j = 0.0;
        audit.observe_session(&exhausted, &mut NullRecorder);
        assert_eq!(audit.probes()[0].outcome, ProbeOutcome::Saturated);
        assert_eq!(audit.probes()[1].outcome, ProbeOutcome::CrashExcused);
        assert_eq!(audit.probes()[2].outcome, ProbeOutcome::Fail);
        assert_eq!(audit.convictions().len(), 1);
        assert_eq!(audit.convictions()[0].node, NodeId(2));
    }

    #[test]
    fn k_of_m_rule_requires_k_failures() {
        let config = AuditConfig {
            probe_rate: 1.0,
            convict_k: 2,
            window_m: 3,
            ..AuditConfig::default()
        };
        let mut audit = AuditState::new(config);
        audit.observe_session(&obs(0, 100.0, 0.0), &mut NullRecorder);
        assert!(audit.convictions().is_empty(), "one failure is not enough");
        audit.observe_session(&obs(0, 100.0, 90.0), &mut NullRecorder);
        audit.observe_session(&obs(0, 100.0, 0.0), &mut NullRecorder);
        assert_eq!(audit.convictions().len(), 1, "two failures in the window");
        // A third failure never double-convicts.
        audit.observe_session(&obs(0, 100.0, 0.0), &mut NullRecorder);
        assert_eq!(audit.convictions().len(), 1);
    }

    #[test]
    fn window_slides_old_failures_out() {
        let config = AuditConfig {
            probe_rate: 1.0,
            convict_k: 2,
            window_m: 2,
            ..AuditConfig::default()
        };
        let mut audit = AuditState::new(config);
        audit.observe_session(&obs(0, 100.0, 0.0), &mut NullRecorder);
        audit.observe_session(&obs(0, 100.0, 90.0), &mut NullRecorder);
        // The old failure has slid out of the 2-wide window.
        audit.observe_session(&obs(0, 100.0, 90.0), &mut NullRecorder);
        audit.observe_session(&obs(0, 100.0, 0.0), &mut NullRecorder);
        assert!(audit.convictions().is_empty());
    }

    #[test]
    fn probe_budget_starves_the_audit() {
        let config = AuditConfig {
            probe_rate: 1.0,
            probe_cost_j: 5.0,
            probe_budget_j: Some(12.0),
            ..AuditConfig::default()
        };
        let mut audit = AuditState::new(config);
        for i in 0..4 {
            audit.observe_session(&obs(i, 100.0, 0.0), &mut NullRecorder);
        }
        assert_eq!(audit.probes().len(), 2, "12 J affords two 5 J probes");
        assert_eq!(audit.starved(), 2);
        assert_eq!(audit.spent_j(), 10.0);
    }

    #[test]
    fn tiny_sessions_are_not_probed() {
        let mut audit = AuditState::new(always_probe());
        audit.observe_session(&obs(0, 0.5, 0.0), &mut NullRecorder);
        assert!(audit.probes().is_empty());
        assert_eq!(audit.probe_seq, 0, "ineligible sessions don't consume seq");
    }

    #[test]
    fn selection_is_deterministic_and_rate_bounded() {
        let audit = AuditState::new(AuditConfig {
            probe_rate: 0.6,
            seed: 7,
            ..AuditConfig::default()
        });
        let picks: Vec<bool> = (0..1000).map(|s| audit.selected(s, NodeId(3))).collect();
        let again: Vec<bool> = (0..1000).map(|s| audit.selected(s, NodeId(3))).collect();
        assert_eq!(picks, again);
        let rate = picks.iter().filter(|&&p| p).count() as f64 / 1000.0;
        assert!((rate - 0.6).abs() < 0.08, "empirical rate {rate}");
    }

    #[test]
    fn audit_state_round_trips_through_serde() {
        let mut audit = AuditState::new(always_probe());
        audit.observe_session(&obs(0, 100.0, 0.0), &mut NullRecorder);
        audit.observe_session(&obs(1, 100.0, 80.0), &mut NullRecorder);
        let json = serde_json::to_string(&audit.to_value()).expect("serialize");
        let value = serde_json::from_str(&json).expect("parse");
        let back = AuditState::from_value(&value).expect("deserialize");
        assert_eq!(audit, back);
    }
}
