//! Simulation traces: events and charging sessions.
//!
//! Detectors (`wrsn-core::detect`) and the experiment harness consume these
//! records; a [`ChargeSession`] in particular carries both the energy
//! *radiated* by the charger (what an observer can verify) and the energy
//! *delivered* to the node (what only the node itself can measure) — the gap
//! between the two is the spoofing attack's signature.

use serde::{Deserialize, Serialize};

use wrsn_net::{NodeId, Point};

use crate::charger::ChargeMode;
use crate::fault::FaultKind;

/// One completed (or truncated) charging session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargeSession {
    /// The served node.
    pub node: NodeId,
    /// Session start time, seconds.
    pub start_s: f64,
    /// Session duration, seconds.
    pub duration_s: f64,
    /// Energy actually stored in the node's battery, joules.
    pub delivered_j: f64,
    /// RF energy radiated by the charger during the session, joules.
    pub radiated_j: f64,
    /// Whether the charger served honestly or spoofed.
    pub mode: ChargeMode,
    /// Where the charger parked.
    pub charger_pos: Point,
}

impl ChargeSession {
    /// Delivered-to-radiated energy ratio (the *charging efficiency* a
    /// perfectly informed auditor would compute). Zero when nothing was
    /// radiated.
    pub fn efficiency(&self) -> f64 {
        if self.radiated_j > 0.0 {
            self.delivered_j / self.radiated_j
        } else {
            0.0
        }
    }
}

/// A timestamped simulation event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SimEvent {
    /// A node's battery reached zero.
    NodeDied {
        /// The node that died.
        node: NodeId,
    },
    /// A node fell to its warning threshold and issued a charging request.
    RequestIssued {
        /// The requesting node.
        node: NodeId,
    },
    /// The charger started moving.
    MoveStarted {
        /// Destination of the move.
        dest: Point,
    },
    /// The charger finished (or aborted) a move.
    MoveEnded {
        /// Where the charger ended up.
        pos: Point,
    },
    /// A charging session completed; the session record holds the details.
    SessionEnded {
        /// Index of the session in [`Trace::sessions`].
        session: usize,
    },
    /// The charger's energy budget ran out.
    ChargerExhausted,
    /// The charger swapped its battery at the depot.
    DepotSwap,
    /// The simulation horizon was reached.
    HorizonReached,
    /// A fault was injected (see [`crate::fault`]).
    Fault {
        /// What was injected.
        fault: FaultKind,
    },
    /// The online audit convicted a node (see [`crate::audit`]). Only worlds
    /// with an attached audit emit this, so audit-free traces keep their
    /// exact pre-audit byte shape.
    AuditConviction {
        /// The convicted node.
        node: NodeId,
    },
}

/// The full recorded trace of a simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<(f64, SimEvent)>,
    sessions: Vec<ChargeSession>,
    death_times: Vec<(NodeId, f64)>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records an event at time `t`.
    pub fn record(&mut self, t: f64, event: SimEvent) {
        if let SimEvent::NodeDied { node } = event {
            self.death_times.push((node, t));
        }
        self.events.push((t, event));
    }

    /// Records a completed charging session and its companion event.
    ///
    /// Back-to-back sessions on the same node in the same mode from the same
    /// parking spot are *merged*: they are physically one uninterrupted visit
    /// (the simulation merely executes long visits in chunks), and auditors
    /// must see them as one.
    pub fn record_session(&mut self, session: ChargeSession) {
        if let Some(last) = self.sessions.last_mut() {
            let end = last.start_s + last.duration_s;
            // Contiguity tolerance: a 1e-6 s absolute floor plus a relative
            // term, so chunk boundaries still register as contiguous at
            // horizons where f64 spacing approaches the floor (beyond ~1e6 s
            // an absolute-only tolerance would start splitting physically
            // uninterrupted visits).
            let tol = 1e-6_f64.max(end.abs() * 1e-12);
            let contiguous = last.node == session.node
                && last.mode == session.mode
                && last.charger_pos == session.charger_pos
                && (end - session.start_s).abs() < tol;
            if contiguous {
                last.duration_s = session.start_s + session.duration_s - last.start_s;
                last.delivered_j += session.delivered_j;
                last.radiated_j += session.radiated_j;
                return;
            }
        }
        let idx = self.sessions.len();
        let end = session.start_s + session.duration_s;
        self.sessions.push(session);
        self.events
            .push((end, SimEvent::SessionEnded { session: idx }));
    }

    /// All events in record order.
    pub fn events(&self) -> &[(f64, SimEvent)] {
        &self.events
    }

    /// All charging sessions in completion order.
    pub fn sessions(&self) -> &[ChargeSession] {
        &self.sessions
    }

    /// Death time of each node that died, in death order.
    pub fn death_times(&self) -> &[(NodeId, f64)] {
        &self.death_times
    }

    /// The death time of `node`, if it died.
    pub fn death_time_of(&self, node: NodeId) -> Option<f64> {
        self.death_times
            .iter()
            .find(|(n, _)| *n == node)
            .map(|&(_, t)| t)
    }

    /// Total energy delivered across all sessions, joules.
    pub fn total_delivered_j(&self) -> f64 {
        self.sessions.iter().map(|s| s.delivered_j).sum()
    }

    /// Total energy radiated across all sessions, joules.
    pub fn total_radiated_j(&self) -> f64 {
        self.sessions.iter().map(|s| s.radiated_j).sum()
    }

    /// Sessions that served `node`.
    pub fn sessions_for(&self, node: NodeId) -> impl Iterator<Item = &ChargeSession> {
        self.sessions.iter().filter(move |s| s.node == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(node: usize, start: f64, delivered: f64, radiated: f64) -> ChargeSession {
        ChargeSession {
            node: NodeId(node),
            start_s: start,
            duration_s: 10.0,
            delivered_j: delivered,
            radiated_j: radiated,
            mode: ChargeMode::Honest,
            charger_pos: Point::ORIGIN,
        }
    }

    #[test]
    fn death_events_populate_death_times() {
        let mut t = Trace::new();
        t.record(5.0, SimEvent::NodeDied { node: NodeId(3) });
        t.record(9.0, SimEvent::NodeDied { node: NodeId(1) });
        assert_eq!(t.death_times(), &[(NodeId(3), 5.0), (NodeId(1), 9.0)]);
        assert_eq!(t.death_time_of(NodeId(1)), Some(9.0));
        assert_eq!(t.death_time_of(NodeId(0)), None);
    }

    #[test]
    fn session_totals() {
        let mut t = Trace::new();
        t.record_session(session(0, 0.0, 30.0, 30.0));
        t.record_session(session(1, 20.0, 0.5, 30.0));
        assert!((t.total_delivered_j() - 30.5).abs() < 1e-12);
        assert!((t.total_radiated_j() - 60.0).abs() < 1e-12);
        assert_eq!(t.sessions_for(NodeId(1)).count(), 1);
    }

    #[test]
    fn session_event_indexes_are_consistent() {
        let mut t = Trace::new();
        t.record_session(session(0, 0.0, 1.0, 2.0));
        t.record_session(session(1, 5.0, 1.0, 2.0));
        let idxs: Vec<usize> = t
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                SimEvent::SessionEnded { session } => Some(*session),
                _ => None,
            })
            .collect();
        assert_eq!(idxs, vec![0, 1]);
        assert_eq!(t.sessions()[1].node, NodeId(1));
    }

    #[test]
    fn contiguous_chunks_merge_into_one_session() {
        let mut t = Trace::new();
        t.record_session(session(3, 0.0, 1.0, 6.0));
        // Next chunk starts exactly where the previous ended (10 s later).
        t.record_session(session(3, 10.0, 2.0, 6.0));
        assert_eq!(t.sessions().len(), 1);
        let s = t.sessions()[0];
        assert_eq!(s.duration_s, 20.0);
        assert_eq!(s.delivered_j, 3.0);
        assert_eq!(s.radiated_j, 12.0);
    }

    #[test]
    fn non_contiguous_sessions_stay_separate() {
        let mut t = Trace::new();
        t.record_session(session(3, 0.0, 1.0, 6.0));
        t.record_session(session(3, 50.0, 2.0, 6.0)); // gap
        t.record_session(session(4, 60.0, 2.0, 6.0)); // other node
        assert_eq!(t.sessions().len(), 3);
    }

    #[test]
    fn efficiency_is_ratio_and_zero_safe() {
        assert!((session(0, 0.0, 15.0, 30.0).efficiency() - 0.5).abs() < 1e-12);
        assert_eq!(session(0, 0.0, 1.0, 0.0).efficiency(), 0.0);
    }

    #[test]
    fn contiguous_chunks_merge_at_large_horizons() {
        // At t ≈ 2e7 s an f64 chunk boundary can be off by a few ulps more
        // than the old absolute 1e-6 s tolerance; the relative term must
        // still merge it.
        let t0 = 2.0e7;
        let mut tr = Trace::new();
        let mut a = session(5, t0, 1.0, 6.0);
        a.duration_s = 100.0;
        let mut b = session(5, t0 + 100.0 + 5e-6, 2.0, 6.0);
        b.duration_s = 50.0;
        tr.record_session(a);
        tr.record_session(b);
        assert_eq!(tr.sessions().len(), 1, "chunks at 2e7 s must merge");
        // A real (seconds-scale) gap still separates sessions.
        let c = session(5, t0 + 500.0, 1.0, 6.0);
        tr.record_session(c);
        assert_eq!(tr.sessions().len(), 2);
    }
}

#[cfg(test)]
mod merge_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Chunked recording may merge sessions but must never lose energy,
        /// and the `SessionEnded` event stream must stay time-ordered with
        /// indices that resolve to recorded sessions.
        #[test]
        fn merging_preserves_energy_totals_and_event_order(
            start in 0.0..1.0e7f64,
            n in 1usize..20,
            seed in 0u64..1_000,
        ) {
            // Deterministic pseudo-random chunk layout from `seed`.
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut trace = Trace::new();
            let mut t = start;
            let mut delivered = 0.0;
            let mut radiated = 0.0;
            for _ in 0..n {
                let node = (next() % 3) as usize;
                let dur = 1.0 + (next() % 1_000) as f64 / 10.0;
                let d = (next() % 100) as f64 / 7.0;
                let r = d + (next() % 100) as f64 / 3.0;
                // Half the chunks are contiguous with the previous one, half
                // leave a gap.
                if next() % 2 == 0 {
                    t += 10.0 + (next() % 100) as f64;
                }
                trace.record_session(ChargeSession {
                    node: NodeId(node),
                    start_s: t,
                    duration_s: dur,
                    delivered_j: d,
                    radiated_j: r,
                    mode: ChargeMode::Honest,
                    charger_pos: Point::ORIGIN,
                });
                t += dur;
                delivered += d;
                radiated += r;
            }
            // Energy conservation under merging.
            let scale = delivered.abs().max(1.0);
            prop_assert!((trace.total_delivered_j() - delivered).abs() < 1e-9 * scale);
            let scale = radiated.abs().max(1.0);
            prop_assert!((trace.total_radiated_j() - radiated).abs() < 1e-9 * scale);
            // Event ordering and index consistency.
            let mut last_t = f64::NEG_INFINITY;
            let mut last_idx = None;
            for (t_ev, ev) in trace.events() {
                prop_assert!(*t_ev >= last_t, "event times must be non-decreasing");
                last_t = *t_ev;
                if let SimEvent::SessionEnded { session } = ev {
                    prop_assert!(*session < trace.sessions().len());
                    if let Some(prev) = last_idx {
                        prop_assert!(*session > prev, "session indices must increase");
                    }
                    last_idx = Some(*session);
                }
            }
        }
    }
}
