//! # wrsn-sim — discrete-event WRSN simulation
//!
//! Glues the physics ([`wrsn_em`]) and the network substrate ([`wrsn_net`])
//! into a runnable world:
//!
//! * [`engine`]: a generic discrete-event queue with deterministic FIFO
//!   tie-breaking,
//! * [`charger`]: the mobile charger — position, speed, energy budget, and the
//!   two-antenna **rig** whose [`charger::ChargeMode`] selects honest charging
//!   or phase-cancelled *spoofed* charging,
//! * [`policy`]: the [`policy::ChargerPolicy`] trait that benign schedulers
//!   (`wrsn-charge`) and the attack (`wrsn-core`) both implement,
//! * [`request`]: the charging-request queue nodes use to summon the charger,
//! * [`trace`]: session/event recording consumed by detectors and experiments,
//! * [`world`]: the simulation loop with exact piecewise-linear battery drain
//!   (node deaths are hit exactly, not stepped over), plus
//!   [`world::Checkpoint`] snapshot/restore,
//! * [`fault`]: seeded, fully reproducible fault injection — node crashes,
//!   charging-efficiency degradation, charger stalls, request loss,
//! * [`error`]: the typed [`error::SimError`] the run loop returns instead of
//!   panicking,
//! * [`parallel`]: order-preserving scoped-thread fan-out for independent
//!   simulation trials (`WRSN_THREADS` controls the worker count), with a
//!   panic-catching, retrying [`parallel::try_map_indexed`] variant and a
//!   watchdog-supervised [`parallel::try_map_indexed_watched`] that cancels
//!   hung items at a wall-clock deadline,
//! * [`cancel`]: the cooperative cancellation protocol — a thread-local
//!   [`cancel::CancelToken`] the run loop polls between integration
//!   segments,
//! * [`store`]: crash-safe disk persistence — atomic checksummed checkpoint
//!   files and the periodic [`store::Checkpointer`] a world carries,
//! * [`obs`]: structured observability — the [`obs::Recorder`] trait (typed
//!   counters, gauges, nested timing spans) and the versioned JSONL trace
//!   schema; the default [`obs::NullRecorder`] keeps uninstrumented runs
//!   byte-identical.
//!
//! # Example
//!
//! ```
//! use wrsn_net::prelude::*;
//! use wrsn_sim::prelude::*;
//!
//! let nodes = deploy::uniform(&Region::square(60.0), 20, 5);
//! let net = Network::build(nodes, Point::new(30.0, 30.0), 20.0);
//! let charger = MobileCharger::standard(Point::new(30.0, 30.0));
//! let mut world = World::new(net, charger, WorldConfig::default());
//! let report = world.run(&mut IdlePolicy).expect("run");
//! assert!(report.final_time_s > 0.0);
//! ```

// `deny` rather than `forbid`: the `shard_exec` module opts back in for the
// shared-column segment kernel that parallel shard execution needs. Every
// other module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod cancel;
pub mod charger;
pub mod engine;
pub mod error;
pub mod fault;
pub mod obs;
pub mod parallel;
pub mod policy;
pub mod request;
mod shard_exec;
pub mod store;
pub mod trace;
pub mod world;

pub use audit::{AuditConfig, AuditState, Conviction, ProbeOutcome, ProbeRecord};
pub use cancel::CancelToken;
pub use charger::{ChargeMode, ChargerRig, MobileCharger};
pub use error::SimError;
pub use fault::{FaultConfig, FaultEvent, FaultInjector, FaultKind, FaultPlan};
pub use obs::{Counter, Gauge, NullRecorder, Recorder, StatsRecorder, TraceRecord};
pub use policy::{ChargerAction, ChargerPolicy, IdlePolicy, WorldView};
pub use request::ChargeRequest;
pub use store::{CheckpointPolicy, Checkpointer, StoreError};
pub use trace::{ChargeSession, SimEvent, Trace};
pub use world::{Checkpoint, SimReport, World, WorldConfig};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::audit::{AuditConfig, AuditState, Conviction, ProbeOutcome, ProbeRecord};
    pub use crate::cancel::CancelToken;
    pub use crate::charger::{ChargeMode, ChargerRig, MobileCharger};
    pub use crate::error::SimError;
    pub use crate::fault::{FaultConfig, FaultEvent, FaultInjector, FaultKind, FaultPlan};
    pub use crate::obs::{Counter, Gauge, NullRecorder, Recorder, StatsRecorder, TraceRecord};
    pub use crate::policy::{ChargerAction, ChargerPolicy, IdlePolicy, WorldView};
    pub use crate::request::ChargeRequest;
    pub use crate::store::{CheckpointPolicy, Checkpointer, StoreError};
    pub use crate::trace::{ChargeSession, SimEvent, Trace};
    pub use crate::world::{Checkpoint, SimReport, World, WorldConfig};
}
