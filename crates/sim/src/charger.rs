//! The mobile charger (MC): motion, energy budget and the two-antenna rig.
//!
//! The rig is where the physics of the Charging Spoofing Attack lives at
//! simulation level: in [`ChargeMode::Honest`] the primary antenna delivers
//! the empirical model's power; in [`ChargeMode::Spoofed`] the helper antenna
//! is tuned by [`wrsn_em::CancelController`] so the victim harvests only the
//! residual left by the attacker's (configurable) phase/amplitude errors —
//! while the rig radiates just as much RF as an honest charge, which is what
//! external observers see.

use serde::{Deserialize, Serialize};

use wrsn_em::{CancelController, Transmitter};
use wrsn_net::Point;

use crate::obs::{Gauge, Recorder};

/// How the charger serves a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChargeMode {
    /// Deliver real energy (what a benign charger does).
    Honest,
    /// Radiate like an honest charge but cancel the field at the victim.
    Spoofed,
    /// Radiate like a spoofed charge but *detune* the cancellation so the
    /// victim still harvests `fraction` of the honest power — the adaptive
    /// attacker's concession to challenge-response auditing: real energy
    /// spent to keep a probed residual above the conviction threshold.
    Partial {
        /// Fraction of the honest delivered power the victim harvests,
        /// clamped to `[0, 1]`.
        fraction: f64,
    },
}

impl ChargeMode {
    /// Whether this mode runs the cancellation helper at all (spoofed or
    /// partial service) — i.e. the charger is attacking, not serving.
    pub fn is_attack(&self) -> bool {
        !matches!(self, ChargeMode::Honest)
    }
}

/// The charger's transmit hardware: a primary antenna plus a cancellation
/// helper offset `helper_offset_m` metres from it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargerRig {
    primary: Transmitter,
    /// Lateral offset of the helper antenna from the primary, metres.
    helper_offset_m: f64,
    /// Attacker's residual phase error when cancelling, radians.
    phase_error_rad: f64,
    /// Attacker's relative amplitude error when cancelling.
    amplitude_error: f64,
}

impl ChargerRig {
    /// A rig built from the given primary transmitter template with the
    /// default 0.3 m helper offset and small calibration errors (0.05 rad,
    /// 2 % amplitude) representative of a practical attacker.
    pub fn new(primary: Transmitter) -> Self {
        ChargerRig {
            primary,
            helper_offset_m: 0.3,
            phase_error_rad: 0.05,
            amplitude_error: 0.02,
        }
    }

    /// A Powercast-class rig.
    pub fn powercast() -> Self {
        ChargerRig::new(Transmitter::powercast())
    }

    /// Sets the attacker's calibration errors (phase in radians, amplitude
    /// relative), returning the rig.
    pub fn with_errors(mut self, phase_error_rad: f64, amplitude_error: f64) -> Self {
        self.phase_error_rad = phase_error_rad;
        self.amplitude_error = amplitude_error;
        self
    }

    /// The primary transmitter template.
    pub fn primary(&self) -> &Transmitter {
        &self.primary
    }

    /// Where the helper antenna sits when serving a victim: on a turret,
    /// `helper_offset_m` from the primary *toward* the victim, so it is
    /// always the nearer antenna and can match the primary's arrival
    /// amplitude at full cancellation depth. (A fixed-side helper would leak
    /// milliwatts whenever the victim sat on its far side — enough to
    /// accidentally keep a disconnected victim alive forever.)
    fn helper_pos(&self, charger_pos: Point, victim: Point) -> Point {
        if charger_pos.distance(victim) < 1e-9 {
            Point::new(charger_pos.x + self.helper_offset_m, charger_pos.y)
        } else {
            charger_pos.toward(victim, self.helper_offset_m)
        }
    }

    /// DC power (W) the victim at `victim` harvests while the charger parks at
    /// `charger_pos` and serves in `mode`.
    pub fn delivered_power(&self, charger_pos: Point, victim: Point, mode: ChargeMode) -> f64 {
        let primary = self.primary.at(charger_pos.x, charger_pos.y);
        match mode {
            ChargeMode::Honest => primary.solo_power_at(victim.into_tuple()),
            ChargeMode::Spoofed => {
                let hp = self.helper_pos(charger_pos, victim);
                let helper = self.primary.at(hp.x, hp.y);
                CancelController::new(&primary, &helper).residual_with_errors(
                    victim.into_tuple(),
                    self.phase_error_rad,
                    self.amplitude_error,
                )
            }
            // A detuned cancellation: the victim harvests the chosen fraction
            // of the honest power, plus the attacker's unavoidable residual
            // leakage (same calibration errors as a full spoof).
            ChargeMode::Partial { fraction } => {
                let honest = primary.solo_power_at(victim.into_tuple());
                let hp = self.helper_pos(charger_pos, victim);
                let helper = self.primary.at(hp.x, hp.y);
                let residual = CancelController::new(&primary, &helper).residual_with_errors(
                    victim.into_tuple(),
                    self.phase_error_rad,
                    self.amplitude_error,
                );
                (honest * fraction.clamp(0.0, 1.0) + residual).min(honest)
            }
        }
    }

    /// RF power (W) the rig radiates while serving in `mode` — what an
    /// external observer (or a trajectory auditor) can measure. A spoofing rig
    /// radiates the primary's rated power *plus* the helper's cancelling
    /// power, so it looks at least as busy as an honest charger.
    pub fn radiated_power(&self, charger_pos: Point, victim: Point, mode: ChargeMode) -> f64 {
        let rated = wrsn_em::constants::DEFAULT_TX_POWER_W;
        match mode {
            ChargeMode::Honest => rated,
            // Both antennas run whether the cancellation is full or detuned:
            // externally a partial spoof is indistinguishable from a full one.
            ChargeMode::Spoofed | ChargeMode::Partial { .. } => {
                let primary = self.primary.at(charger_pos.x, charger_pos.y);
                let hp = self.helper_pos(charger_pos, victim);
                let helper = self.primary.at(hp.x, hp.y);
                let k = CancelController::new(&primary, &helper)
                    .solve(victim.into_tuple())
                    .helper_power_factor;
                rated * (1.0 + k)
            }
        }
    }
}

impl Default for ChargerRig {
    fn default() -> Self {
        ChargerRig::powercast()
    }
}

/// A mobile charger: position, speed, finite energy budget and a rig.
///
/// # Example
///
/// ```
/// use wrsn_net::Point;
/// use wrsn_sim::MobileCharger;
///
/// let mc = MobileCharger::standard(Point::new(0.0, 0.0));
/// assert!(mc.energy_j() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobileCharger {
    position: Point,
    speed_mps: f64,
    energy_j: f64,
    capacity_j: f64,
    /// Locomotion cost, joules per metre.
    move_cost_j_per_m: f64,
    /// Distance at which the charger parks from a node it serves, metres.
    service_distance_m: f64,
    rig: ChargerRig,
}

/// Default charger energy budget: 2 MJ (service-vehicle battery).
pub const DEFAULT_MC_ENERGY_J: f64 = 2.0e6;

/// Default charger travel speed: 5 m/s.
pub const DEFAULT_MC_SPEED_MPS: f64 = 5.0;

/// Default locomotion cost: 50 J per metre.
pub const DEFAULT_MOVE_COST_J_PER_M: f64 = 50.0;

/// Default service (parking) distance from a node: 1 m.
pub const DEFAULT_SERVICE_DISTANCE_M: f64 = 1.0;

impl MobileCharger {
    /// A charger with the standard parameters at `start`.
    pub fn standard(start: Point) -> Self {
        MobileCharger {
            position: start,
            speed_mps: DEFAULT_MC_SPEED_MPS,
            energy_j: DEFAULT_MC_ENERGY_J,
            capacity_j: DEFAULT_MC_ENERGY_J,
            move_cost_j_per_m: DEFAULT_MOVE_COST_J_PER_M,
            service_distance_m: DEFAULT_SERVICE_DISTANCE_M,
            rig: ChargerRig::powercast(),
        }
    }

    /// Sets the travel speed (m/s), returning the charger.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not finite and positive.
    pub fn with_speed(mut self, speed: f64) -> Self {
        assert!(speed.is_finite() && speed > 0.0, "speed must be positive");
        self.speed_mps = speed;
        self
    }

    /// Sets the energy budget (J), returning the charger.
    ///
    /// # Panics
    ///
    /// Panics if `energy_j` is not finite and positive.
    pub fn with_energy(mut self, energy_j: f64) -> Self {
        assert!(
            energy_j.is_finite() && energy_j > 0.0,
            "energy must be positive"
        );
        self.energy_j = energy_j;
        self.capacity_j = energy_j;
        self
    }

    /// Sets the rig, returning the charger.
    pub fn with_rig(mut self, rig: ChargerRig) -> Self {
        self.rig = rig;
        self
    }

    /// Sets the parking distance from served nodes (m), returning the
    /// charger.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not finite and positive.
    pub fn with_service_distance(mut self, d: f64) -> Self {
        assert!(
            d.is_finite() && d > 0.0,
            "service distance must be positive"
        );
        self.service_distance_m = d;
        self
    }

    /// Current position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Travel speed, m/s.
    pub fn speed_mps(&self) -> f64 {
        self.speed_mps
    }

    /// Remaining energy, joules.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Initial energy budget, joules.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Locomotion cost, J/m.
    pub fn move_cost_j_per_m(&self) -> f64 {
        self.move_cost_j_per_m
    }

    /// Parking distance from a served node, metres.
    pub fn service_distance_m(&self) -> f64 {
        self.service_distance_m
    }

    /// The rig.
    pub fn rig(&self) -> &ChargerRig {
        &self.rig
    }

    /// Travel time to `dest` at the configured speed, seconds.
    pub fn travel_time_to(&self, dest: Point) -> f64 {
        self.position.distance(dest) / self.speed_mps
    }

    /// The point the charger parks at to serve a node at `node_pos`: on the
    /// segment from its current position, `service_distance_m` short of the
    /// node (or its current position if already close enough).
    pub fn service_point(&self, node_pos: Point) -> Point {
        let d = self.position.distance(node_pos);
        if d <= self.service_distance_m {
            self.position
        } else {
            node_pos.toward(self.position, self.service_distance_m)
        }
    }

    /// Moves toward `dest`, spending locomotion energy; if the budget runs out
    /// en route, stops where the energy ends. Returns the distance actually
    /// travelled, metres.
    pub fn move_to(&mut self, dest: Point) -> f64 {
        let d = self.position.distance(dest);
        if d == 0.0 {
            return 0.0;
        }
        let affordable = if self.move_cost_j_per_m > 0.0 {
            self.energy_j / self.move_cost_j_per_m
        } else {
            f64::INFINITY
        };
        let travelled = d.min(affordable);
        self.position = self.position.lerp(dest, travelled / d);
        self.energy_j = (self.energy_j - travelled * self.move_cost_j_per_m).max(0.0);
        travelled
    }

    /// Refills the charger's own battery to capacity (a depot battery swap).
    /// Returns the energy added.
    pub fn refill(&mut self) -> f64 {
        let added = self.capacity_j - self.energy_j;
        self.energy_j = self.capacity_j;
        added
    }

    /// Spends `energy_j` from the budget (saturating); returns the energy
    /// actually spent.
    pub fn spend(&mut self, energy_j: f64) -> f64 {
        let e = energy_j.max(0.0).min(self.energy_j);
        self.energy_j -= e;
        e
    }

    /// Whether the budget is effectively exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.energy_j <= 1e-9
    }

    /// Samples the charger's gauges into `rec` (currently the remaining
    /// energy budget). The world loop calls this at the end of a run.
    pub fn observe(&self, rec: &mut dyn Recorder) {
        rec.gauge(Gauge::ChargerEnergyJ, self.energy_j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_mode_delivers_model_power() {
        let rig = ChargerRig::powercast();
        let p = rig.delivered_power(Point::ORIGIN, Point::new(1.0, 0.0), ChargeMode::Honest);
        let expect = Transmitter::powercast().model().power_at(1.0);
        assert!((p - expect).abs() < 1e-12);
    }

    #[test]
    fn spoofed_mode_delivers_almost_nothing() {
        let rig = ChargerRig::powercast();
        let charger = Point::ORIGIN;
        let victim = Point::new(1.0, 0.0);
        let honest = rig.delivered_power(charger, victim, ChargeMode::Honest);
        let spoofed = rig.delivered_power(charger, victim, ChargeMode::Spoofed);
        assert!(
            spoofed < 0.01 * honest,
            "spoofed {spoofed} vs honest {honest}"
        );
    }

    #[test]
    fn perfect_attacker_delivers_exactly_zero() {
        let rig = ChargerRig::powercast().with_errors(0.0, 0.0);
        let spoofed = rig.delivered_power(Point::ORIGIN, Point::new(1.0, 0.0), ChargeMode::Spoofed);
        assert!(spoofed < 1e-20);
    }

    #[test]
    fn partial_mode_delivers_the_requested_fraction() {
        let rig = ChargerRig::powercast();
        let c = Point::ORIGIN;
        let v = Point::new(1.0, 0.0);
        let honest = rig.delivered_power(c, v, ChargeMode::Honest);
        let partial = rig.delivered_power(c, v, ChargeMode::Partial { fraction: 0.35 });
        // Fraction of honest plus the (tiny) cancellation residual.
        assert!(
            partial >= 0.35 * honest && partial < 0.37 * honest,
            "partial {partial} vs honest {honest}"
        );
        // Out-of-range fractions clamp rather than exceed honest power.
        let over = rig.delivered_power(c, v, ChargeMode::Partial { fraction: 7.0 });
        assert!(over <= honest + 1e-12);
        let under = rig.delivered_power(c, v, ChargeMode::Partial { fraction: -1.0 });
        let spoofed = rig.delivered_power(c, v, ChargeMode::Spoofed);
        assert!((under - spoofed).abs() < 1e-15, "fraction 0 == full spoof");
    }

    #[test]
    fn partial_radiates_like_a_full_spoof() {
        let rig = ChargerRig::powercast();
        let c = Point::ORIGIN;
        let v = Point::new(1.0, 0.0);
        let spoofed = rig.radiated_power(c, v, ChargeMode::Spoofed);
        let partial = rig.radiated_power(c, v, ChargeMode::Partial { fraction: 0.35 });
        assert_eq!(partial, spoofed, "externally indistinguishable");
    }

    #[test]
    fn attack_mode_predicate() {
        assert!(!ChargeMode::Honest.is_attack());
        assert!(ChargeMode::Spoofed.is_attack());
        assert!(ChargeMode::Partial { fraction: 0.5 }.is_attack());
    }

    #[test]
    fn spoofed_radiates_at_least_as_much_as_honest() {
        let rig = ChargerRig::powercast();
        let c = Point::ORIGIN;
        let v = Point::new(1.0, 0.0);
        let honest = rig.radiated_power(c, v, ChargeMode::Honest);
        let spoofed = rig.radiated_power(c, v, ChargeMode::Spoofed);
        assert!(spoofed >= honest);
    }

    #[test]
    fn move_to_spends_energy_linearly() {
        let mut mc = MobileCharger::standard(Point::ORIGIN);
        let e0 = mc.energy_j();
        let travelled = mc.move_to(Point::new(100.0, 0.0));
        assert_eq!(travelled, 100.0);
        assert!((e0 - mc.energy_j() - 100.0 * DEFAULT_MOVE_COST_J_PER_M).abs() < 1e-9);
        assert_eq!(mc.position(), Point::new(100.0, 0.0));
    }

    #[test]
    fn move_to_stops_when_energy_runs_out() {
        let mut mc = MobileCharger::standard(Point::ORIGIN).with_energy(500.0);
        // 500 J at 50 J/m affords 10 m.
        let travelled = mc.move_to(Point::new(100.0, 0.0));
        assert!((travelled - 10.0).abs() < 1e-9);
        assert!(mc.is_exhausted());
        assert!((mc.position().x - 10.0).abs() < 1e-9);
    }

    #[test]
    fn service_point_is_offset_from_node() {
        let mc = MobileCharger::standard(Point::ORIGIN);
        let node = Point::new(10.0, 0.0);
        let sp = mc.service_point(node);
        assert!((sp.distance(node) - DEFAULT_SERVICE_DISTANCE_M).abs() < 1e-9);
    }

    #[test]
    fn service_point_when_already_close_is_current_position() {
        let mc = MobileCharger::standard(Point::new(9.7, 0.0));
        let node = Point::new(10.0, 0.0);
        assert_eq!(mc.service_point(node), mc.position());
    }

    #[test]
    fn spend_saturates() {
        let mut mc = MobileCharger::standard(Point::ORIGIN).with_energy(100.0);
        assert_eq!(mc.spend(60.0), 60.0);
        assert_eq!(mc.spend(60.0), 40.0);
        assert!(mc.is_exhausted());
    }

    #[test]
    fn travel_time_uses_speed() {
        let mc = MobileCharger::standard(Point::ORIGIN).with_speed(2.0);
        assert!((mc.travel_time_to(Point::new(10.0, 0.0)) - 5.0).abs() < 1e-12);
    }
}
