//! The simulation world and its run loop.
//!
//! Time advances in *exact* piecewise-linear segments: between topology
//! changes every battery drains at a constant rate, so the world computes the
//! next node-death instant analytically and never steps over a death. Node
//! deaths trigger routing recomputation (traffic reroutes around the corpse),
//! which is precisely the cascade the attack tries to set off.

use serde::{Deserialize, Serialize};

use wrsn_net::energy::RadioEnergyModel;
use wrsn_net::keynode;
use wrsn_net::metrics::{self, HealthSnapshot};
use wrsn_net::routing::{self, RoutingTree, TrafficLoad};
use wrsn_net::{Network, NodeId};

use crate::audit::{AuditConfig, AuditState, SessionObservation};
use crate::charger::{ChargeMode, MobileCharger};
use crate::error::SimError;
use crate::fault::{FaultInjector, FaultKind, FaultPlan};
use crate::obs::{self, Counter, Gauge, Recorder, TraceRecord};
use crate::policy::{ChargerAction, ChargerPolicy, WorldView};
use crate::request::{ChargeRequest, RequestQueue};
use crate::shard_exec::{self, SegmentCtx, ShardSlot};
use crate::store::Checkpointer;
use crate::trace::{ChargeSession, SimEvent, Trace};

/// Static configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Simulation horizon, seconds.
    pub horizon_s: f64,
    /// Radio energy model used to derive node power draw.
    pub radio: RadioEnergyModel,
    /// Sensing radius used for coverage metrics, metres.
    pub sensing_radius_m: f64,
    /// The network is considered "alive" while at least this fraction of
    /// alive nodes can reach the sink; the first crossing below it is the
    /// reported network lifetime.
    pub lifetime_reachability: f64,
    /// Optional depot where [`crate::ChargerAction::Recharge`] swaps the
    /// charger's battery. `None` = finite, non-renewable budget.
    pub depot: Option<wrsn_net::Point>,
    /// Time a depot battery swap takes, seconds.
    pub depot_swap_time_s: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            horizon_s: 86_400.0, // 24 h
            radio: RadioEnergyModel::classical(),
            sensing_radius_m: 10.0,
            lifetime_reachability: 0.9,
            depot: None,
            depot_swap_time_s: 600.0,
        }
    }
}

/// Summary of a finished simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Name of the policy that drove the charger.
    pub policy_name: String,
    /// Time the run ended, seconds.
    pub final_time_s: f64,
    /// Configured horizon, seconds.
    pub horizon_s: f64,
    /// Nodes dead at the end.
    pub dead_nodes: usize,
    /// Nodes alive at the end.
    pub alive_nodes: usize,
    /// Network lifetime (first reachability-threshold crossing), if it
    /// happened.
    pub network_lifetime_s: Option<f64>,
    /// Charger energy consumed (movement + radiation), joules.
    pub charger_energy_used_j: f64,
    /// Total energy delivered to nodes, joules.
    pub total_delivered_j: f64,
    /// Total RF energy radiated in sessions, joules.
    pub total_radiated_j: f64,
    /// Number of charging sessions.
    pub sessions: usize,
    /// Depot battery swaps performed.
    pub depot_visits: usize,
    /// Health snapshot at the end of the run.
    pub final_health: HealthSnapshot,
}

/// Streaming progress hook: called as `(sim_time_s, trace)` at each cadence
/// boundary; returning `false` cancels the run. See
/// [`World::run_with_progress`].
pub type ProgressHook<'a> = &'a mut dyn FnMut(f64, &Trace) -> bool;

/// A runnable WRSN world: network + charger + clock + trace.
///
/// Serializable: a world can be snapshotted to JSON mid- or post-run and
/// reloaded for offline forensics (see the `wrsn` CLI's `audit` command).
/// Policies are not part of the snapshot — they are reattached on `run`.
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct World {
    net: Network,
    charger: MobileCharger,
    config: WorldConfig,
    time_s: f64,
    tree: RoutingTree,
    power_w: Vec<f64>,
    requests: RequestQueue,
    trace: Trace,
    lifetime_s: Option<f64>,
    depot_visits: usize,
    /// Charger energy consumed across all battery fills, including swapped-in
    /// depot batteries.
    energy_used_j: f64,
    /// Attached fault injection, if any. `None` (the default, and what
    /// [`FaultPlan::none`] leaves) keeps the run loop byte-identical to a
    /// world without fault machinery.
    faults: Option<FaultInjector>,
    /// Attached online base-station audit (digital twin + challenge-response
    /// probes), if any. Like `faults`: `None` keeps the run loop and the
    /// snapshot byte-identical to a pre-audit world. Purely observational —
    /// it never perturbs the trajectory.
    audit: Option<AuditState>,
    /// Attached periodic on-disk snapshotter, if any. Pure observation: never
    /// serialized, never part of a [`Checkpoint`], never perturbs the
    /// trajectory.
    ckpt: Option<Checkpointer>,
    /// Number of spatial shards the advance loop partitions the node columns
    /// into (1 = unsharded). Pure execution strategy, like `ckpt`: never
    /// serialized, preserved across [`World::restore`], and byte-identical
    /// output at any value.
    shard_count: usize,
    /// Worker threads the sharded advance fans shards over (1 = run shards
    /// sequentially on the calling thread). Pure execution strategy like
    /// `shard_count`: never serialized, preserved across [`World::restore`],
    /// byte-identical output at any value.
    thread_count: usize,
    scratch: Scratch,
}

/// Reusable hot-loop buffers. Derived state only: everything here is a pure
/// function of the serialized `World` fields and is rebuilt on deserialize,
/// so snapshots stay byte-compatible with the pre-scratch format.
#[derive(Debug, Clone)]
struct Scratch {
    /// Alive mask, kept current across deaths (replaces per-segment
    /// `alive_mask()` allocations).
    alive: Vec<bool>,
    /// Indices of alive nodes, ascending.
    alive_idx: Vec<usize>,
    /// Net battery drain per node, watts, under the current topology and
    /// injection; only entries listed in `alive_idx` are meaningful.
    net_w: Vec<f64>,
    /// Indices of alive nodes with strictly positive net drain, ascending —
    /// the only candidates for the next death / warning-crossing event.
    drain_idx: Vec<usize>,
    /// Nodes that died in the current segment.
    dead: Vec<NodeId>,
    /// Nodes whose warning-threshold status flipped in the current segment
    /// (ascending) — the only nodes whose request status can have changed.
    crossed: Vec<usize>,
    /// Output buffer for [`RoutingTree::repair_after_deaths`].
    affected: Vec<bool>,
    /// Traffic load matching `World::tree`, kept so incremental refreshes can
    /// diff loads instead of recomputing every node's power.
    load: TrafficLoad,
    /// Event horizon carried over from the last `advance` exit, keyed by the
    /// injection `(node, watts bits)` it was computed under. While no battery
    /// or topology mutation intervenes, the drain buffers and this horizon
    /// are still exact, so a same-injection `advance` skips its entry
    /// rebuild/scan entirely. Cleared by every out-of-loop mutation
    /// (`refresh_full`, `set_battery_level`).
    horizon: Option<(Option<NodeId>, u64, f64)>,
    /// Spatial shard map: node indices grouped by uniform-grid locality, each
    /// shard sorted ascending. Empty when `World::shard_count <= 1` (the
    /// unsharded fast path iterates `alive_idx` directly).
    shards: Vec<Vec<usize>>,
    /// Per-shard accumulators for the parallel advance, one per shard (kept
    /// sized by [`World::rebuild_shards`] so the hot loop never allocates).
    shard_slots: Vec<ShardSlot>,
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch {
            alive: Vec::new(),
            alive_idx: Vec::new(),
            net_w: Vec::new(),
            drain_idx: Vec::new(),
            dead: Vec::new(),
            crossed: Vec::new(),
            affected: Vec::new(),
            load: TrafficLoad {
                rx_bps: Vec::new(),
                tx_bps: Vec::new(),
            },
            horizon: None,
            shards: Vec::new(),
            shard_slots: Vec::new(),
        }
    }
}

// Hand-written so the scratch buffers stay out of snapshots: the JSON shape
// is identical to the previous derived form, and `Scratch` is rebuilt from
// the deserialized fields.
impl Serialize for World {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("net".to_string(), self.net.to_value()),
            ("charger".to_string(), self.charger.to_value()),
            ("config".to_string(), self.config.to_value()),
            ("time_s".to_string(), self.time_s.to_value()),
            ("tree".to_string(), self.tree.to_value()),
            ("power_w".to_string(), self.power_w.to_value()),
            ("requests".to_string(), self.requests.to_value()),
            ("trace".to_string(), self.trace.to_value()),
            ("lifetime_s".to_string(), self.lifetime_s.to_value()),
            ("depot_visits".to_string(), self.depot_visits.to_value()),
            ("energy_used_j".to_string(), self.energy_used_j.to_value()),
        ];
        // Fault state only enters the snapshot when a plan is attached, so
        // fault-free snapshots keep the exact pre-fault byte shape.
        if let Some(faults) = &self.faults {
            entries.push(("faults".to_string(), faults.to_value()));
        }
        // Same deal for the audit: only attached audits enter the snapshot.
        if let Some(audit) = &self.audit {
            entries.push(("audit".to_string(), audit.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for World {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::expected("map", "World"))?;
        let mut world = World {
            net: Deserialize::from_value(serde::map_get(entries, "net")?)?,
            charger: Deserialize::from_value(serde::map_get(entries, "charger")?)?,
            config: Deserialize::from_value(serde::map_get(entries, "config")?)?,
            time_s: Deserialize::from_value(serde::map_get(entries, "time_s")?)?,
            tree: Deserialize::from_value(serde::map_get(entries, "tree")?)?,
            power_w: Deserialize::from_value(serde::map_get(entries, "power_w")?)?,
            requests: Deserialize::from_value(serde::map_get(entries, "requests")?)?,
            trace: Deserialize::from_value(serde::map_get(entries, "trace")?)?,
            lifetime_s: Deserialize::from_value(serde::map_get(entries, "lifetime_s")?)?,
            depot_visits: Deserialize::from_value(serde::map_get(entries, "depot_visits")?)?,
            energy_used_j: Deserialize::from_value(serde::map_get(entries, "energy_used_j")?)?,
            faults: match entries.iter().find(|(k, _)| k == "faults") {
                Some((_, v)) => Some(FaultInjector::from_value(v)?),
                None => None,
            },
            audit: match entries.iter().find(|(k, _)| k == "audit") {
                Some((_, v)) => Some(AuditState::from_value(v)?),
                None => None,
            },
            ckpt: None,
            shard_count: crate::parallel::shards(),
            thread_count: crate::parallel::threads(),
            scratch: Scratch::default(),
        };
        world.rebuild_scratch();
        Ok(world)
    }
}

/// Relative tolerance when matching a node's depletion instant.
pub(crate) const DEATH_EPS: f64 = 1e-9;

impl World {
    /// Creates a world at `t = 0` with full batteries.
    pub fn new(net: Network, charger: MobileCharger, config: WorldConfig) -> Self {
        let tree = RoutingTree::shortest_path(&net, &net.alive_mask());
        let mut world = World {
            net,
            charger,
            config,
            time_s: 0.0,
            tree,
            power_w: Vec::new(),
            requests: RequestQueue::new(),
            trace: Trace::new(),
            lifetime_s: None,
            depot_visits: 0,
            energy_used_j: 0.0,
            faults: None,
            audit: None,
            ckpt: None,
            shard_count: crate::parallel::shards(),
            thread_count: crate::parallel::threads(),
            scratch: Scratch::default(),
        };
        world.refresh_full();
        world.rebuild_shards();
        world
    }

    /// Attaches a fault plan (builder form). See [`World::set_fault_plan`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// Attaches a fault plan: its events fire as simulation time crosses them
    /// during [`World::run`]/[`World::advance_by`]. An empty plan
    /// ([`FaultPlan::none`]) detaches fault injection entirely, leaving the
    /// run byte-identical to a world that never had a plan.
    ///
    /// Replaces any previously attached plan and resets its runtime state;
    /// events scheduled before the current time fire on the next advance.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.scratch.horizon = None;
        self.faults = if plan.is_empty() {
            None
        } else {
            Some(FaultInjector::new(plan))
        };
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Attaches an online audit (builder form). See [`World::set_audit`].
    pub fn with_audit(mut self, config: AuditConfig) -> Self {
        self.set_audit(Some(config));
        self
    }

    /// Attaches (or detaches, with `None`) the base station's online audit:
    /// a digital twin scoring every charging session against the honest
    /// charge model, with seeded challenge-response probes and a k-of-m
    /// conviction rule (see [`crate::audit`]). The audit is purely
    /// observational — attaching it leaves the physics trajectory, trace,
    /// and report byte-identical; only the audit's own ledger (and its
    /// `audit_*` counters) differ.
    ///
    /// Replaces any previously attached audit and resets its state.
    pub fn set_audit(&mut self, config: Option<AuditConfig>) {
        self.audit = config.map(AuditState::new);
    }

    /// The attached online audit, if any.
    pub fn audit(&self) -> Option<&AuditState> {
        self.audit.as_ref()
    }

    /// Attaches (or detaches, with `None`) a periodic on-disk
    /// [`Checkpointer`]: during [`World::run_with`]/[`World::advance_by`] the
    /// world is persisted to the checkpointer's file every
    /// [`crate::store::CheckpointPolicy::every_sim_s`] simulated seconds,
    /// rolling atomically so the file always holds the latest complete
    /// snapshot. The first checkpoint falls one interval after the current
    /// clock. Checkpointing is pure observation — the trajectory, trace, and
    /// snapshots stay byte-identical to an unobserved run.
    pub fn set_checkpointer(&mut self, ckpt: Option<Checkpointer>) {
        let now_s = self.time_s;
        self.ckpt = ckpt.map(|c| c.armed_at(now_s));
    }

    /// The attached checkpointer, if any.
    pub fn checkpointer(&self) -> Option<&Checkpointer> {
        self.ckpt.as_ref()
    }

    /// Sets the number of spatial shards the advance loop partitions the
    /// node columns into (values below 1 clamp to 1 = unsharded). Sharding
    /// is a pure execution strategy: the trajectory, trace and snapshots are
    /// byte-identical at any shard count. New worlds start from the
    /// [`crate::parallel::SHARDS_ENV`] environment variable (default 1).
    pub fn set_shards(&mut self, shards: usize) {
        self.shard_count = shards.max(1);
        self.rebuild_shards();
    }

    /// The configured spatial shard count (1 = unsharded).
    pub fn shards(&self) -> usize {
        self.shard_count
    }

    /// Sets the number of worker threads the sharded advance fans shards over
    /// (values below 1 clamp to 1 = sequential). Like sharding, threading is
    /// a pure execution strategy: the trajectory, trace and snapshots are
    /// byte-identical at any thread count. It only takes effect together with
    /// `set_shards(n >= 2)` — with one shard there is nothing to fan out.
    /// New worlds start from the [`crate::parallel::THREADS_ENV`] environment
    /// variable (default: available parallelism).
    pub fn set_threads(&mut self, threads: usize) {
        self.thread_count = threads.max(1);
    }

    /// The configured worker thread count (1 = sequential).
    pub fn threads(&self) -> usize {
        self.thread_count
    }

    /// Current simulation time, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// The network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The charger.
    pub fn charger(&self) -> &MobileCharger {
        &self.charger
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The current routing tree.
    pub fn tree(&self) -> &RoutingTree {
        &self.tree
    }

    /// Current per-node power draw, watts.
    pub fn power_w(&self) -> &[f64] {
        &self.power_w
    }

    /// Outstanding charging requests.
    pub fn requests(&self) -> &[ChargeRequest] {
        self.requests.pending()
    }

    /// Network lifetime if the reachability threshold was crossed.
    pub fn network_lifetime_s(&self) -> Option<f64> {
        self.lifetime_s
    }

    fn view<'a>(&'a self) -> WorldView<'a> {
        WorldView {
            time_s: self.time_s,
            net: &self.net,
            tree: &self.tree,
            power_w: &self.power_w,
            charger: &self.charger,
            requests: self.requests.pending(),
            horizon_s: self.config.horizon_s,
            depot: self.config.depot,
            radio: self.config.radio,
        }
    }

    /// Recomputes the ascending alive-index list from the alive mask. The
    /// single definition shared by [`World::rebuild_alive`] (full rebuild)
    /// and [`World::refresh_after_deaths`] (post-death repair): both paths
    /// must agree bitwise on iteration order, so there is exactly one.
    fn rebuild_alive_idx(alive: &[bool], alive_idx: &mut Vec<usize>) {
        alive_idx.clear();
        alive_idx.extend((0..alive.len()).filter(|&i| alive[i]));
    }

    /// Rebuilds the alive mask/index and sizes the per-node scratch buffers.
    fn rebuild_alive(&mut self) {
        let n = self.net.node_count();
        let net = &self.net;
        self.scratch.alive.clear();
        self.scratch.alive.extend((0..n).map(|i| net.alive(i)));
        Self::rebuild_alive_idx(&self.scratch.alive, &mut self.scratch.alive_idx);
        self.scratch.net_w.resize(n, 0.0);
        self.scratch.affected.resize(n, false);
    }

    /// Rebuilds all derived scratch state from the serialized fields.
    fn rebuild_scratch(&mut self) {
        self.rebuild_alive();
        self.scratch.load = routing::traffic_load(&self.net, &self.tree, &self.scratch.alive);
        self.rebuild_shards();
    }

    /// Rebuilds the spatial shard map: every node (alive or not) is bucketed
    /// by the same uniform-grid cell the adjacency build hashes on (cell side
    /// = comm range), cells are ordered lexicographically, and the ordered
    /// cell list is cut into `shard_count` contiguous blocks of roughly equal
    /// node count, each sorted ascending. Membership is a pure function of
    /// positions, comm range and shard count — identical across runs,
    /// restores and thread counts, which is what makes the sharded advance
    /// deterministic.
    fn rebuild_shards(&mut self) {
        self.scratch.shards.clear();
        self.scratch.shard_slots.clear();
        let n = self.net.node_count();
        if self.shard_count <= 1 || n == 0 {
            return;
        }
        let positions = self.net.positions();
        let (min_x, min_y) = wrsn_net::graph::grid_origin(positions);
        let inv_cell = 1.0 / self.net.comm_range();
        let mut cells: std::collections::BTreeMap<(i64, i64), Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, &p) in positions.iter().enumerate() {
            cells
                .entry(wrsn_net::graph::grid_cell(p, min_x, min_y, inv_cell))
                .or_default()
                .push(i);
        }
        let shard_count = self.shard_count.min(n);
        let target = n.div_ceil(shard_count);
        let mut shard: Vec<usize> = Vec::new();
        for members in cells.into_values() {
            shard.extend(members);
            if shard.len() >= target && self.scratch.shards.len() + 1 < shard_count {
                shard.sort_unstable();
                self.scratch.shards.push(std::mem::take(&mut shard));
            }
        }
        if !shard.is_empty() {
            shard.sort_unstable();
            self.scratch.shards.push(shard);
        }
        self.scratch
            .shard_slots
            .resize_with(self.scratch.shards.len(), ShardSlot::default);
    }

    /// Recomputes routing/power from scratch after a topology change, updates
    /// the lifetime marker and the request queue.
    fn refresh_full(&mut self) {
        self.scratch.horizon = None;
        self.rebuild_alive();
        self.tree = RoutingTree::shortest_path(&self.net, &self.scratch.alive);
        self.scratch.load = routing::traffic_load(&self.net, &self.tree, &self.scratch.alive);
        // Includes the disconnected-drain floor: alive-but-disconnected nodes
        // keep listening and beaconing for a route — they are "exhausted in
        // vain", which is exactly the fate the attack inflicts. Per-node
        // power is pure and bitwise-stable, so the threaded recompute is
        // identical at any thread count.
        self.power_w = keynode::effective_power_draw_with_tree_threads(
            &self.net,
            &self.scratch.alive,
            &self.config.radio,
            &self.tree,
            &self.scratch.load,
            self.thread_count,
        );
        self.check_lifetime();
        self.scan_requests();
    }

    /// Incremental [`World::refresh_full`] for the advance loop: the nodes in
    /// `scratch.dead` just died, so only their routing subtrees and the nodes
    /// whose traffic load changed need recomputation. Bit-identical to the
    /// full refresh (asserted in debug builds).
    fn refresh_after_deaths(&mut self, rec: &mut dyn Recorder) {
        let Scratch {
            alive,
            alive_idx,
            dead,
            ..
        } = &mut self.scratch;
        for d in dead.iter() {
            alive[d.0] = false;
        }
        Self::rebuild_alive_idx(alive, alive_idx);

        let mut affected = std::mem::take(&mut self.scratch.affected);
        let dead = std::mem::take(&mut self.scratch.dead);
        let report =
            self.tree
                .repair_after_deaths(&self.net, &self.scratch.alive, &dead, &mut affected);
        if report.full_rebuild {
            rec.add(Counter::RoutingFullBuilds, 1);
        } else {
            rec.add(Counter::RoutingRepairs, 1);
            rec.add(Counter::RoutingRepairRelaxed, report.relaxed as u64);
        }
        // Traffic must be recomputed in full — its farthest-first ordering and
        // float accumulation depend on every node's distance — but it is cheap
        // next to a Dijkstra, and diffing it below limits power recomputation.
        let load = routing::traffic_load(&self.net, &self.tree, &self.scratch.alive);
        // Whether repaired incrementally or rebuilt, the tree is bitwise
        // identical to a from-scratch build, so nodes outside the affected set
        // with unchanged load keep bitwise-identical power entries.
        let recomputed = keynode::update_effective_power(
            &self.net,
            &self.scratch.alive,
            &self.config.radio,
            &self.tree,
            &load,
            &self.scratch.load,
            &affected,
            &mut self.power_w,
        );
        rec.add(
            Counter::PowerRecomputesSkipped,
            (self.net.node_count() - recomputed) as u64,
        );
        self.scratch.load = load;
        affected.clear();
        self.scratch.affected = affected;
        let mut dead = dead;
        dead.clear();
        self.scratch.dead = dead;
        #[cfg(debug_assertions)]
        {
            let full =
                keynode::effective_power_draw(&self.net, &self.scratch.alive, &self.config.radio);
            debug_assert!(
                self.power_w
                    .iter()
                    .zip(&full)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "incremental power update diverged from the full recomputation"
            );
        }
        self.check_lifetime();
        self.scan_requests();
    }

    /// Sets the battery level of `node` directly and refreshes routing/power.
    ///
    /// Intended for experiment setup and failure injection (e.g. starting a
    /// scenario with half-drained relays).
    ///
    /// # Errors
    ///
    /// Returns [`wrsn_net::NetError::UnknownNode`] for invalid ids.
    pub fn set_battery_level(
        &mut self,
        node: NodeId,
        level_j: f64,
    ) -> Result<(), wrsn_net::NetError> {
        let was_alive = self.net.node(node)?.is_alive();
        self.net.energy_mut().set_level(node.0, level_j);
        let alive_now = self.net.alive(node.0);
        if !alive_now {
            self.trace.record(self.time_s, SimEvent::NodeDied { node });
        }
        if alive_now == was_alive {
            // Routing, power draw and the lifetime marker are functions of
            // the (unchanged) alive set; only this node's request status can
            // have moved — but the level change stales any carried-over
            // event horizon.
            self.scratch.horizon = None;
            self.scan_request_one(node);
        } else {
            self.refresh_full();
        }
        Ok(())
    }

    fn check_lifetime(&mut self) {
        if self.lifetime_s.is_some() {
            return;
        }
        let alive = self.scratch.alive_idx.len();
        if alive == 0 {
            self.lifetime_s = Some(self.time_s);
            return;
        }
        let reach = self.tree.reachable_count() as f64 / alive as f64;
        if reach < self.config.lifetime_reachability {
            self.lifetime_s = Some(self.time_s);
        }
    }

    fn scan_requests(&mut self) {
        for id in 0..self.net.node_count() {
            self.scan_request_one(NodeId(id));
        }
    }

    /// Reconciles one node's charge-request status with its battery state.
    /// Idempotent: rescanning a node whose battery did not change is a no-op
    /// for both the queue and the trace.
    fn scan_request_one(&mut self, nid: NodeId) {
        let i = nid.0;
        if !self.net.alive(i) {
            self.requests.withdraw(nid);
            return;
        }
        if self.net.needs_charging(i) {
            // A fault-armed request loss eats the node's next (re-)issue: the
            // broadcast went out but the charger never heard it.
            if !self.requests.contains(nid) {
                if let Some(faults) = self.faults.as_mut() {
                    if faults.consume_request_loss(nid) {
                        return;
                    }
                }
            }
            let issued = self.requests.issue(ChargeRequest {
                node: nid,
                issued_at_s: self.time_s,
                deficit_j: self.net.capacities_j()[i] - self.net.levels_j()[i],
                residual_j: self.net.levels_j()[i],
            });
            if issued {
                self.trace
                    .record(self.time_s, SimEvent::RequestIssued { node: nid });
            }
        } else {
            self.requests.withdraw(nid);
        }
    }

    /// Per-segment request scan restricted to nodes whose warning-threshold
    /// status actually flipped this segment (collected by the apply loop).
    /// A live node holds a pending request iff it needs charging, and scans
    /// are idempotent, so nodes that did not cross the threshold would have
    /// been no-ops for both the queue and the trace.
    fn scan_crossed(&mut self, rec: &mut dyn Recorder) {
        let crossed = self.scratch.crossed.len();
        rec.add(
            Counter::RequestScansSkipped,
            (self.net.node_count() - crossed) as u64,
        );
        for idx in 0..crossed {
            let i = self.scratch.crossed[idx];
            self.scan_request_one(NodeId(i));
        }
        self.scratch.crossed.clear();
    }

    /// Next interesting instant under the current drain rates: a node death
    /// or a warning-threshold crossing (the latter so charging requests are
    /// issued on time). Only positive-drain nodes can hit either, so the
    /// scan walks `drain_idx` instead of every node. Used at advance entry
    /// and after a topology refresh; steady-state segments fold the same
    /// computation into the apply loop instead.
    fn next_event_horizon(&self) -> f64 {
        let mut t_event = f64::INFINITY;
        let levels = self.net.levels_j();
        let warnings = self.net.warnings_j();
        for idx in 0..self.scratch.drain_idx.len() {
            let i = self.scratch.drain_idx[idx];
            let w = self.scratch.net_w[i];
            let level = levels[i];
            let warning = warnings[i];
            t_event = t_event.min(level / w);
            if level > warning {
                t_event = t_event.min((level - warning) / w);
            }
        }
        t_event
    }

    /// Recomputes per-node net drain and the positive-drain index from the
    /// current power draw and injection. Called whenever `power_w` or the
    /// alive set changes mid-advance.
    fn rebuild_drain(&mut self, inject_node: Option<NodeId>, inject_w: f64) {
        let power_w = &self.power_w;
        let Scratch {
            alive_idx,
            net_w,
            drain_idx,
            ..
        } = &mut self.scratch;
        drain_idx.clear();
        for &i in alive_idx.iter() {
            let mut w = power_w[i];
            if inject_node == Some(NodeId(i)) {
                w -= inject_w;
            }
            net_w[i] = w;
            if w > 0.0 {
                drain_idx.push(i);
            }
        }
    }

    /// The injection power actually reaching `inject_node`'s battery once
    /// fault-injected charging-efficiency degradation is applied.
    fn effective_inject_w(&self, inject_node: Option<NodeId>, inject_w: f64) -> f64 {
        match (inject_node, &self.faults) {
            (Some(node), Some(faults)) => inject_w * faults.efficiency(node),
            _ => inject_w,
        }
    }

    /// Advances time by `dt` seconds while `inject` watts flow *into* the
    /// battery of `inject_node` (the node currently being charged). Handles
    /// node deaths exactly, and lands on (never steps over) scheduled fault
    /// events. Returns the energy actually stored in `inject_node`'s battery
    /// over the interval.
    ///
    /// Allocation-free: drain rates, event-candidate indices and the death
    /// list all live in reusable [`Scratch`] buffers.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the network rejects a node id or a fault event
    /// targets an unknown node.
    fn advance(
        &mut self,
        dt: f64,
        inject_node: Option<NodeId>,
        inject_w: f64,
        rec: &mut dyn Recorder,
    ) -> Result<f64, SimError> {
        debug_assert!(dt >= 0.0 && dt.is_finite());
        let mut remaining = dt;
        let mut stored = 0.0;
        if remaining <= 0.0 {
            return Ok(stored);
        }
        // Supervision hooks resolved once per advance: the thread's
        // cooperative cancellation token (polled every segment) and whether a
        // checkpointer is attached. Both are `None` in unsupervised runs, so
        // the hot loop pays one branch per segment for them.
        let cancel = crate::cancel::current();
        let mut eff_w = self.effective_inject_w(inject_node, inject_w);
        let mut t_event = match self.scratch.horizon {
            // Nothing mutated batteries or drains since the last advance
            // under the same injection: its exit horizon and drain buffers
            // are still exact.
            Some((node, w_bits, h)) if node == inject_node && w_bits == eff_w.to_bits() => h,
            _ => {
                self.rebuild_drain(inject_node, eff_w);
                self.next_event_horizon()
            }
        };
        while remaining > 0.0 {
            if let Some(token) = &cancel {
                if token.is_cancelled() {
                    return Err(SimError::Cancelled);
                }
            }
            rec.add(Counter::AdvanceSegments, 1);
            let mut step = remaining.min(t_event);
            // Land exactly on the next scheduled fault so it is injected at
            // its nominal instant, never stepped over.
            let mut fault_at = None;
            if let Some(at) = self.faults.as_ref().and_then(|f| f.next_event_at()) {
                let until = at - self.time_s;
                if until <= step {
                    step = until.max(0.0);
                    fault_at = Some(at);
                }
            }
            #[cfg(debug_assertions)]
            let pre_total_j: f64 = {
                let levels = self.net.levels_j();
                self.scratch.alive_idx.iter().map(|&i| levels[i]).sum()
            };
            // The horizon for the *next* segment reads exactly the post-step
            // battery levels this loop writes, so it is folded in here: one
            // pass applies the drain, detects deaths and warning crossings,
            // and accumulates the next event time bit-identically to a fresh
            // `next_event_horizon` scan (same nodes ascending, same values).
            let mut t_next = f64::INFINITY;
            {
                let threads = self.thread_count;
                let mut cols = self.net.energy_mut();
                let Scratch {
                    alive,
                    alive_idx,
                    net_w,
                    dead,
                    crossed,
                    shards,
                    shard_slots,
                    ..
                } = &mut self.scratch;
                let ctx = SegmentCtx {
                    power_w: &self.power_w,
                    net_w: net_w.as_slice(),
                    inject_node,
                    eff_w,
                    step,
                };
                if shards.is_empty() {
                    stored += shard_exec::apply_sequential(
                        &mut cols,
                        alive_idx,
                        None,
                        &ctx,
                        &mut t_next,
                        dead,
                        crossed,
                    );
                } else {
                    // Sharded advance: every per-node update is independent
                    // of every other node's, so each shard applies the same
                    // ops to its own members (filtered by the alive mask —
                    // shards keep dead members, `alive_idx` does not), and
                    // the cross-shard effect lists are merged back into the
                    // ascending index order the unsharded loop produces.
                    // `t_next` is a min-fold (exactly associative) and
                    // `stored` is only ever contributed by the inject node's
                    // shard, so the merge is bitwise equal to the fast path
                    // at any shard × thread count.
                    if threads > 1 && shards.len() > 1 {
                        // Parallel: each shard fills a private slot; the
                        // merge below replays the sequential loop's exact
                        // accumulation sequence in ascending shard order.
                        shard_exec::apply_shards_parallel(
                            &mut cols,
                            shards,
                            alive,
                            threads,
                            &ctx,
                            shard_slots,
                        )
                        .map_err(|e| SimError::ShardPanic {
                            shard: e.index,
                            message: e.message,
                        })?;
                        for slot in shard_slots.iter_mut() {
                            stored += slot.stored;
                            t_next = t_next.min(slot.t_next);
                            dead.append(&mut slot.dead);
                            crossed.append(&mut slot.crossed);
                        }
                    } else {
                        for shard in shards.iter() {
                            stored += shard_exec::apply_sequential(
                                &mut cols,
                                shard,
                                Some(alive),
                                &ctx,
                                &mut t_next,
                                dead,
                                crossed,
                            );
                        }
                    }
                    dead.sort_unstable();
                    crossed.sort_unstable();
                }
            }
            self.time_s += step;
            remaining -= step;
            if let Some(at) = fault_at {
                // `step` was `at - time_s` in exact arithmetic; snap the float
                // residue so the event fires at its nominal instant instead of
                // spinning on a sub-ulp gap.
                self.time_s = self.time_s.max(at);
            }
            #[cfg(debug_assertions)]
            self.debug_check_energy(pre_total_j, eff_w, step);
            let any_death = !self.scratch.dead.is_empty();
            for idx in 0..self.scratch.dead.len() {
                let node = self.scratch.dead[idx];
                self.trace.record(self.time_s, SimEvent::NodeDied { node });
            }
            if any_death {
                // The refresh rescans every node and the new power vector
                // invalidates the folded horizon: recompute both from scratch.
                self.scratch.crossed.clear();
                rec.add(Counter::TopologyRefreshes, 1);
                self.refresh_after_deaths(rec);
                self.rebuild_drain(inject_node, eff_w);
                t_event = self.next_event_horizon();
            } else if step > 0.0 {
                self.scan_crossed(rec);
                t_event = t_next;
            } else if fault_at.is_none() {
                // No drain anywhere: jump the whole interval. (Nothing
                // changed, so no request scan is due either — scans are
                // idempotent on unchanged batteries.)
                self.scratch.crossed.clear();
                self.time_s += remaining;
                remaining = 0.0;
                t_event = t_next;
            }
            if fault_at.is_some() {
                // Injections mutate the alive set, per-node efficiency, or
                // armed state; drains and the horizon are stale either way.
                self.apply_due_faults(rec)?;
                eff_w = self.effective_inject_w(inject_node, inject_w);
                self.rebuild_drain(inject_node, eff_w);
                t_event = self.next_event_horizon();
            }
            // Segment boundary: persistent state is consistent, so a due
            // checkpoint can be rolled to disk here without perturbing
            // anything the simulation computes.
            if self.ckpt.is_some() {
                self.write_due_checkpoints(rec)?;
            }
        }
        // No trailing scan: every segment that moved a battery already
        // reconciled requests (crossing scan or post-death refresh), so the
        // old closing `scan_requests` only re-walked all nodes for nothing.
        self.scratch.horizon = Some((inject_node, eff_w.to_bits(), t_event));
        Ok(stored)
    }

    /// Rolls a due periodic checkpoint to disk. The checkpointer is detached
    /// while the snapshot is taken so it never captures itself.
    fn write_due_checkpoints(&mut self, rec: &mut dyn Recorder) -> Result<(), SimError> {
        let Some(mut ckpt) = self.ckpt.take() else {
            return Ok(());
        };
        let result = ckpt.write_due(self, rec);
        self.ckpt = Some(ckpt);
        result.map_err(SimError::Store)
    }

    /// Injects every fault event due at the current instant: crashes become
    /// deaths (with routing repair), degradations/stalls/losses arm their
    /// deferred state in the injector. Each injection is recorded as a
    /// [`SimEvent::Fault`] in the trace.
    fn apply_due_faults(&mut self, rec: &mut dyn Recorder) -> Result<(), SimError> {
        while let Some(event) = self.faults.as_mut().and_then(|f| f.pop_due(self.time_s)) {
            self.trace
                .record(self.time_s, SimEvent::Fault { fault: event.kind });
            match event.kind {
                FaultKind::NodeFailure { node } => {
                    if node.0 >= self.net.node_count() {
                        return Err(SimError::FaultTarget(node));
                    }
                    // Crashing a node that already died (or crashed) is a
                    // recorded no-op: the plan is generated blind to the run.
                    if self.net.alive(node.0) {
                        self.net.mark_failed(node)?;
                        self.trace.record(self.time_s, SimEvent::NodeDied { node });
                        self.scratch.dead.push(node);
                        rec.add(Counter::TopologyRefreshes, 1);
                        self.refresh_after_deaths(rec);
                    }
                }
                FaultKind::Degradation { node, factor } => {
                    if node.0 >= self.net.node_count() {
                        return Err(SimError::FaultTarget(node));
                    }
                    let n = self.net.node_count();
                    if let Some(faults) = self.faults.as_mut() {
                        faults.degrade(node, factor, n);
                    }
                }
                FaultKind::ChargerStall { delay_s } => {
                    if let Some(faults) = self.faults.as_mut() {
                        faults.arm_stall(delay_s);
                    }
                }
                FaultKind::RequestLoss { node } => {
                    if node.0 >= self.net.node_count() {
                        return Err(SimError::FaultTarget(node));
                    }
                    // An in-flight request is dropped on the spot; otherwise
                    // the loss arms and eats the node's next issue.
                    if self.requests.contains(node) {
                        self.requests.withdraw(node);
                    } else if let Some(faults) = self.faults.as_mut() {
                        faults.arm_request_loss(node);
                    }
                }
            }
        }
        Ok(())
    }

    /// Debug-only energy-conservation watchdog, run after every integration
    /// segment: no battery may leave `[0, capacity]`, and the network's total
    /// stored energy may not grow by more than the charger injected.
    #[cfg(debug_assertions)]
    fn debug_check_energy(&self, pre_total_j: f64, inject_w: f64, step: f64) {
        let mut post_total_j = 0.0;
        let levels = self.net.levels_j();
        let caps = self.net.capacities_j();
        for &i in &self.scratch.alive_idx {
            let level = levels[i];
            debug_assert!(
                level >= 0.0 && level <= caps[i] * (1.0 + 1e-9),
                "node {i} battery out of range: {level} J of {} J",
                caps[i]
            );
            post_total_j += level;
        }
        let budget = inject_w.max(0.0) * step;
        let tol = 1e-6 + 1e-9 * (pre_total_j.abs() + budget);
        debug_assert!(
            post_total_j <= pre_total_j + budget + tol,
            "energy conservation violated: total rose {} J over a segment that \
             injected at most {budget} J",
            post_total_j - pre_total_j
        );
    }

    /// Executes one policy action; returns `Ok(false)` when the run should
    /// stop.
    fn execute(&mut self, action: ChargerAction, rec: &mut dyn Recorder) -> Result<bool, SimError> {
        match action {
            ChargerAction::Finish => Ok(false),
            ChargerAction::Recharge => {
                let Some(depot) = self.config.depot else {
                    // No depot: a recharge request degrades to a no-op wait so
                    // policies written for depot worlds still run.
                    return self.execute(ChargerAction::Wait(1.0), rec);
                };
                if self.charger.position().distance(depot) > 1e-9
                    && !self.execute(ChargerAction::MoveTo(depot), rec)?
                {
                    return Ok(false);
                }
                let swap = self
                    .config
                    .depot_swap_time_s
                    .min(self.config.horizon_s - self.time_s);
                if swap > 0.0 {
                    self.advance(swap, None, 0.0, rec)?;
                }
                self.charger.refill();
                self.depot_visits += 1;
                self.trace.record(self.time_s, SimEvent::DepotSwap);
                Ok(true)
            }
            ChargerAction::Wait(d) => {
                let d = d.max(0.0).min(self.config.horizon_s - self.time_s);
                if d <= 0.0 {
                    return Ok(self.time_s < self.config.horizon_s);
                }
                rec.add(Counter::Waits, 1);
                self.advance(d, None, 0.0, rec)?;
                Ok(true)
            }
            ChargerAction::MoveTo(dest) => {
                if self.charger.is_exhausted() {
                    self.trace.record(self.time_s, SimEvent::ChargerExhausted);
                    return Ok(false);
                }
                self.trace
                    .record(self.time_s, SimEvent::MoveStarted { dest });
                let e0 = self.charger.energy_j();
                let travelled = self.charger.move_to(dest);
                self.energy_used_j += e0 - self.charger.energy_j();
                // An armed travel stall (fault injection) extends this move:
                // the vehicle is stuck while the network keeps draining.
                let stall = self.faults.as_mut().map_or(0.0, |f| f.take_stall());
                let dt = (travelled / self.charger.speed_mps() + stall)
                    .min(self.config.horizon_s - self.time_s);
                if dt > 0.0 {
                    self.advance(dt, None, 0.0, rec)?;
                }
                self.trace.record(
                    self.time_s,
                    SimEvent::MoveEnded {
                        pos: self.charger.position(),
                    },
                );
                Ok(true)
            }
            ChargerAction::Charge {
                node,
                duration_s,
                mode,
            } => {
                if self.charger.is_exhausted() {
                    self.trace.record(self.time_s, SimEvent::ChargerExhausted);
                    return Ok(false);
                }
                let Ok(target) = self.net.node(node) else {
                    return Ok(true); // unknown node: skip the action
                };
                let node_pos = target.position();
                // Drive to the service point first.
                let park = self.charger.service_point(node_pos);
                if self.charger.position().distance(park) > 1e-9
                    && !self.execute(ChargerAction::MoveTo(park), rec)?
                {
                    return Ok(false);
                }
                let pos = self.charger.position();
                let delivered_w = self.charger.rig().delivered_power(pos, node_pos, mode);
                let radiated_w = self.charger.rig().radiated_power(pos, node_pos, mode);
                // Truncate to horizon and to the charger's energy budget.
                let mut dur = duration_s.max(0.0).min(self.config.horizon_s - self.time_s);
                if radiated_w > 0.0 {
                    dur = dur.min(self.charger.energy_j() / radiated_w);
                }
                if dur <= 0.0 {
                    return Ok(self.time_s < self.config.horizon_s);
                }
                // Serve in chunks so the session ends the moment the served
                // node dies — a charger cannot keep "charging" a corpse.
                let start = self.time_s;
                let level_before = self.net.levels_j()[node.0];
                let mut stored = 0.0;
                let mut remaining = dur;
                let mut guard = 0usize;
                while remaining > 1e-9 && self.net.alive(node.0) {
                    let drain = self.power_w[node.0] - delivered_w;
                    let chunk = if drain > 0.0 {
                        let ttd = self.net.levels_j()[node.0] / drain;
                        remaining.min(ttd.max(1e-6) + 1e-9)
                    } else {
                        remaining
                    };
                    rec.add(Counter::SessionChunks, 1);
                    stored += self.advance(chunk, Some(node), delivered_w, rec)?;
                    remaining -= chunk;
                    guard += 1;
                    if guard > 10_000 {
                        break;
                    }
                }
                let dur_actual = self.time_s - start;
                let radiated_j = radiated_w * dur_actual;
                self.energy_used_j += self.charger.spend(radiated_j);
                self.trace.record_session(ChargeSession {
                    node,
                    start_s: start,
                    duration_s: dur_actual,
                    delivered_j: stored,
                    radiated_j,
                    mode,
                    charger_pos: pos,
                });
                // The base station's digital twin scores the session it just
                // commissioned. The twin believes the charger served honestly
                // — that is the whole point of the audit — so the expected
                // delivery is the *honest-mode* power over the actual
                // duration, whatever mode really ran.
                if let Some(mut audit) = self.audit.take() {
                    let honest_w =
                        self.charger
                            .rig()
                            .delivered_power(pos, node_pos, ChargeMode::Honest);
                    let session = SessionObservation {
                        node,
                        end_s: self.time_s,
                        duration_s: dur_actual,
                        believed_j: honest_w * dur_actual,
                        level_before_j: level_before,
                        level_after_j: self.net.levels_j()[node.0],
                        capacity_j: self.net.capacities_j()[node.0],
                        alive: self.net.alive(node.0),
                        drain_w: self.power_w[node.0],
                    };
                    if let Some(conviction) = audit.observe_session(&session, rec) {
                        self.trace.record(
                            self.time_s,
                            SimEvent::AuditConviction {
                                node: conviction.node,
                            },
                        );
                    }
                    self.audit = Some(audit);
                }
                // A served node no longer needs charging (or is dead).
                self.scan_requests();
                Ok(true)
            }
        }
    }

    /// Advances the world by `dt` seconds with no charger activity: batteries
    /// drain, deaths and scheduled faults fire, requests are issued. The
    /// checkpoint/forensics companion to [`World::run`] — experiments use it
    /// to play a world forward between snapshots without a policy attached.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidDuration`] for negative or non-finite `dt`,
    /// or any error the integrator surfaces.
    pub fn advance_by(&mut self, dt: f64) -> Result<(), SimError> {
        self.advance_by_with(dt, &mut obs::NullRecorder)
    }

    /// [`World::advance_by`] with an observing recorder (engine counters,
    /// including [`Counter::CheckpointsWritten`] from an attached
    /// checkpointer, land in `rec`).
    ///
    /// # Errors
    ///
    /// See [`World::advance_by`].
    pub fn advance_by_with(&mut self, dt: f64, rec: &mut dyn Recorder) -> Result<(), SimError> {
        if !dt.is_finite() || dt < 0.0 {
            return Err(SimError::InvalidDuration {
                what: "advance_by",
                value: dt,
            });
        }
        self.advance(dt, None, 0.0, rec)?;
        Ok(())
    }

    /// Captures the complete simulation state — batteries, clock, routing,
    /// pending requests, trace, fault-injection state — as a [`Checkpoint`].
    /// Restoring it with [`World::restore`] and re-advancing reproduces the
    /// uninterrupted run bitwise.
    pub fn snapshot(&self) -> Checkpoint {
        let mut state = self.clone();
        // The snapshotter itself is runtime supervision, not simulation
        // state: a restored world keeps (or re-attaches) its own.
        state.ckpt = None;
        Checkpoint { state }
    }

    /// Restores the world to a [`Checkpoint`] taken earlier (or deserialized
    /// from disk). All derived scratch state — including the carried-over
    /// event horizon — is invalidated and rebuilt, so the restored world's
    /// subsequent trajectory is bitwise identical to the uninterrupted one.
    pub fn restore(&mut self, checkpoint: &Checkpoint) {
        // Supervision attachments and execution strategy survive a restore: a
        // world resuming from disk keeps writing its periodic checkpoints and
        // keeps its configured shard and thread counts (neither changes
        // output).
        let ckpt = self.ckpt.take();
        let shard_count = self.shard_count;
        let thread_count = self.thread_count;
        *self = checkpoint.state.clone();
        self.ckpt = ckpt.map(|c| c.armed_at(self.time_s));
        self.shard_count = shard_count;
        self.thread_count = thread_count;
        self.scratch = Scratch::default();
        self.rebuild_scratch();
    }

    /// Runs the world under `policy` until the policy finishes or the horizon
    /// is reached, then free-runs the network to the horizon. Returns the run
    /// report; the detailed trace stays available via [`World::trace`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the engine hits an inconsistent state (stale
    /// node id, fault event targeting an unknown node) instead of panicking.
    pub fn run<P: ChargerPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
    ) -> Result<SimReport, SimError> {
        self.run_with(policy, &mut obs::NullRecorder)
    }

    /// Like [`World::run`], but reports engine counters, timing spans and the
    /// full trace into `rec`. With a [`obs::NullRecorder`] this is exactly
    /// `run`; a recorder never influences the simulation itself.
    ///
    /// On completion the *entire* recorded trace (including any events
    /// predating this call, e.g. deaths injected via
    /// [`World::set_battery_level`]) is exported as
    /// [`TraceRecord::Event`]/[`TraceRecord::Session`] records, followed by
    /// one [`TraceRecord::Snapshot`] of the final network health.
    ///
    /// # Errors
    ///
    /// See [`World::run`].
    pub fn run_with<P: ChargerPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
        rec: &mut dyn Recorder,
    ) -> Result<SimReport, SimError> {
        rec.span_enter("world_run");
        let result = self.run_loop(policy, rec, None);
        rec.span_exit("world_run");
        result
    }

    /// Like [`World::run_with`], but additionally calls `progress` with the
    /// live [`Trace`] whenever the simulation clock crosses a `cadence_s`
    /// boundary — the hook behind the service's streaming responses. The hook
    /// observes the trace read-only; returning `false` cancels the run with
    /// [`SimError::Cancelled`] at that boundary (cooperative client-side
    /// cancellation). With a hook that always returns `true` the simulated
    /// trajectory, report, and trace are bitwise identical to
    /// [`World::run_with`] — the hook only *reads*.
    ///
    /// # Errors
    ///
    /// See [`World::run`]; additionally [`SimError::Cancelled`] when the hook
    /// declines to continue.
    pub fn run_with_progress<P: ChargerPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
        rec: &mut dyn Recorder,
        cadence_s: f64,
        progress: ProgressHook<'_>,
    ) -> Result<SimReport, SimError> {
        rec.span_enter("world_run");
        let result = self.run_loop(policy, rec, Some((cadence_s.max(1e-9), progress)));
        rec.span_exit("world_run");
        result
    }

    fn run_loop<P: ChargerPolicy + ?Sized>(
        &mut self,
        policy: &mut P,
        rec: &mut dyn Recorder,
        mut progress: Option<(f64, ProgressHook<'_>)>,
    ) -> Result<SimReport, SimError> {
        let mut guard = 0usize;
        let mut next_flush = progress.as_ref().map(|(cadence, _)| self.time_s + cadence);
        while self.time_s < self.config.horizon_s {
            rec.add(Counter::PolicyDecisions, 1);
            rec.span_enter("policy_decide");
            let action = policy.next_action_observed(&self.view(), rec);
            rec.span_exit("policy_decide");
            let t_before = self.time_s;
            rec.span_enter("execute");
            let keep_going = self.execute(action, rec);
            rec.span_exit("execute");
            if !keep_going? {
                break;
            }
            if let (Some((cadence, hook)), Some(flush_at)) =
                (progress.as_mut(), next_flush.as_mut())
            {
                // One flush per crossing, however many cadence intervals the
                // executed action spanned — frames track wall progress, they
                // do not replay every boundary of a long travel leg.
                if self.time_s >= *flush_at {
                    if !hook(self.time_s, &self.trace) {
                        return Err(SimError::Cancelled);
                    }
                    *flush_at = self.time_s + *cadence;
                }
            }
            if self.time_s == t_before {
                guard += 1;
                // A policy may legitimately issue a few zero-time actions
                // (e.g. MoveTo its current position) but not forever.
                if guard > 10_000 {
                    break;
                }
            } else {
                guard = 0;
            }
        }
        // Free-run the network (no charger activity) to the horizon.
        if self.time_s < self.config.horizon_s {
            let left = self.config.horizon_s - self.time_s;
            self.advance(left, None, 0.0, rec)?;
        }
        self.trace.record(self.time_s, SimEvent::HorizonReached);
        let report = self.report(policy.name());
        if rec.enabled() {
            obs::export_trace(rec, &self.trace);
            rec.emit(&TraceRecord::Snapshot {
                t_s: self.time_s,
                health: report.final_health,
            });
            self.charger.observe(rec);
            rec.gauge(Gauge::SimTimeS, self.time_s);
            rec.gauge(Gauge::AliveNodes, report.alive_nodes as f64);
            rec.gauge(Gauge::PendingRequests, self.requests.pending().len() as f64);
        }
        Ok(report)
    }

    /// Builds a report for the current state.
    pub fn report(&self, policy_name: &str) -> SimReport {
        let alive = self.net.alive_mask().iter().filter(|&&a| a).count();
        SimReport {
            policy_name: policy_name.to_string(),
            final_time_s: self.time_s,
            horizon_s: self.config.horizon_s,
            dead_nodes: self.net.node_count() - alive,
            alive_nodes: alive,
            network_lifetime_s: self.lifetime_s,
            charger_energy_used_j: self.energy_used_j,
            total_delivered_j: self.trace.total_delivered_j(),
            total_radiated_j: self.trace.total_radiated_j(),
            sessions: self.trace.sessions().len(),
            depot_visits: self.depot_visits,
            final_health: metrics::snapshot(&self.net, self.config.sensing_radius_m, 20),
        }
    }
}

/// A frozen copy of a [`World`]'s complete simulation state, taken with
/// [`World::snapshot`] and re-applied with [`World::restore`].
///
/// Serializes to the exact same JSON shape as the world itself, so a
/// checkpoint file is also a valid forensic snapshot for the `wrsn` CLI's
/// `audit` command. Derived scratch state is never captured; restore rebuilds
/// it, which is what makes restore + re-advance bitwise identical to an
/// uninterrupted run.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    state: World,
}

impl Checkpoint {
    /// Read access to the frozen state (e.g. for inspecting the clock without
    /// restoring).
    pub fn world(&self) -> &World {
        &self.state
    }
}

impl Serialize for Checkpoint {
    fn to_value(&self) -> serde::Value {
        self.state.to_value()
    }
}

impl Deserialize for Checkpoint {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Checkpoint {
            state: World::from_value(value)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charger::ChargeMode;
    use wrsn_net::deploy;
    use wrsn_net::energy::Battery;
    use wrsn_net::node::SensorNode;
    use wrsn_net::{Point, Region};

    fn tiny_world(horizon: f64) -> World {
        // Three nodes in a line, sink at the left.
        let nodes: Vec<SensorNode> = (0..3)
            .map(|i| {
                SensorNode::with_battery(
                    Point::new(10.0 * (i + 1) as f64, 0.0),
                    Battery::new(100.0, 20.0),
                )
            })
            .collect();
        let net = Network::build(nodes, Point::ORIGIN, 12.0);
        let charger = MobileCharger::standard(Point::new(0.0, 5.0));
        World::new(
            net,
            charger,
            WorldConfig {
                horizon_s: horizon,
                ..WorldConfig::default()
            },
        )
    }

    #[test]
    fn idle_run_drains_nodes_to_death() {
        let mut w = tiny_world(1.0e6);
        let report = w.run(&mut crate::policy::IdlePolicy).expect("run");
        // 100 J at ≈1 mW idle+traffic drain: all dead long before 1e6 s.
        assert_eq!(report.dead_nodes, 3);
        assert_eq!(report.alive_nodes, 0);
        assert!(report.network_lifetime_s.is_some());
        assert_eq!(report.policy_name, "idle");
    }

    #[test]
    fn death_order_follows_power_draw() {
        let mut w = tiny_world(1.0e6);
        w.run(&mut crate::policy::IdlePolicy).expect("run");
        let deaths = w.trace().death_times();
        assert_eq!(deaths.len(), 3);
        // Node 0 relays everything → dies first.
        assert_eq!(deaths[0].0, NodeId(0));
        assert!(deaths[0].1 <= deaths[1].1 && deaths[1].1 <= deaths[2].1);
    }

    #[test]
    fn requests_issued_when_threshold_crossed() {
        let mut w = tiny_world(1.0e6);
        w.run(&mut crate::policy::IdlePolicy).expect("run");
        let issued = w
            .trace()
            .events()
            .iter()
            .filter(|(_, e)| matches!(e, SimEvent::RequestIssued { .. }))
            .count();
        assert_eq!(issued, 3, "each node should have requested charging once");
    }

    /// A policy that charges node 2 once, honestly, then finishes.
    struct ChargeOnce(bool);
    impl ChargerPolicy for ChargeOnce {
        fn next_action(&mut self, _view: &WorldView<'_>) -> ChargerAction {
            if self.0 {
                ChargerAction::Finish
            } else {
                self.0 = true;
                ChargerAction::Charge {
                    node: NodeId(2),
                    duration_s: 400.0,
                    mode: ChargeMode::Honest,
                }
            }
        }
        fn name(&self) -> &str {
            "charge-once"
        }
    }

    #[test]
    fn honest_charge_delivers_energy_and_spends_budget() {
        let mut w = tiny_world(3600.0);
        w.set_battery_level(NodeId(2), 25.0).unwrap();
        let report = w.run(&mut ChargeOnce(false)).expect("run");
        assert_eq!(report.sessions, 1);
        let s = w.trace().sessions()[0];
        assert_eq!(s.mode, ChargeMode::Honest);
        assert!(s.delivered_j > 0.0, "delivered = {}", s.delivered_j);
        assert!(s.radiated_j > 0.0);
        assert!(report.charger_energy_used_j > s.radiated_j * 0.99);
        // The charger parked ~1 m from the node.
        let node_pos = w.network().positions()[2];
        assert!((s.charger_pos.distance(node_pos) - 1.0).abs() < 1e-6);
    }

    /// A policy that spoof-charges node 2 once.
    struct SpoofOnce(bool);
    impl ChargerPolicy for SpoofOnce {
        fn next_action(&mut self, _view: &WorldView<'_>) -> ChargerAction {
            if self.0 {
                ChargerAction::Finish
            } else {
                self.0 = true;
                ChargerAction::Charge {
                    node: NodeId(2),
                    duration_s: 400.0,
                    mode: ChargeMode::Spoofed,
                }
            }
        }
        fn name(&self) -> &str {
            "spoof-once"
        }
    }

    #[test]
    fn spoofed_charge_radiates_but_delivers_almost_nothing() {
        let mut honest_w = tiny_world(3600.0);
        honest_w.set_battery_level(NodeId(2), 25.0).unwrap();
        honest_w.run(&mut ChargeOnce(false)).expect("run");
        let honest = honest_w.trace().sessions()[0];

        let mut spoof_w = tiny_world(3600.0);
        spoof_w.set_battery_level(NodeId(2), 25.0).unwrap();
        spoof_w.run(&mut SpoofOnce(false)).expect("run");
        let spoof = spoof_w.trace().sessions()[0];

        assert!(spoof.radiated_j >= honest.radiated_j * 0.99);
        assert!(
            spoof.delivered_j < 0.02 * honest.delivered_j.max(1e-12),
            "spoof delivered {} vs honest {}",
            spoof.delivered_j,
            honest.delivered_j
        );
    }

    #[test]
    fn horizon_truncates_runs() {
        let mut w = tiny_world(50.0);
        let report = w.run(&mut crate::policy::IdlePolicy).expect("run");
        assert!((report.final_time_s - 50.0).abs() < 1e-9);
        assert_eq!(report.dead_nodes, 0, "nothing dies in 50 s");
    }

    #[test]
    fn battery_saturation_limits_delivered_energy() {
        // Node 2 is full at t=0; charging it stores almost nothing beyond its
        // ongoing drain.
        let mut w = tiny_world(3600.0);
        let report = w.run(&mut ChargeOnce(false)).expect("run");
        let s = w.trace().sessions()[0];
        let headroom_plus_drain = 0.0 + w.power_w()[2] * s.duration_s + 1.0;
        assert!(
            s.delivered_j <= headroom_plus_drain + 100.0,
            "delivered = {}",
            s.delivered_j
        );
        let _ = report;
    }

    #[test]
    fn exhausted_charger_cannot_charge() {
        let nodes = deploy::uniform(&Region::square(30.0), 5, 1);
        let net = Network::build(nodes, Point::ORIGIN, 15.0);
        let charger = MobileCharger::standard(Point::ORIGIN).with_energy(1e-6);
        let mut w = World::new(
            net,
            charger,
            WorldConfig {
                horizon_s: 100.0,
                ..WorldConfig::default()
            },
        );
        let report = w.run(&mut ChargeOnce(false)).expect("run");
        // The charge action is refused; world free-runs to the horizon.
        assert_eq!(report.sessions, 0);
        assert!((report.final_time_s - 100.0).abs() < 1e-9);
    }

    #[test]
    fn recharge_without_depot_degrades_to_waiting() {
        struct RechargeOnce(bool);
        impl ChargerPolicy for RechargeOnce {
            fn next_action(&mut self, _view: &WorldView<'_>) -> ChargerAction {
                if self.0 {
                    ChargerAction::Finish
                } else {
                    self.0 = true;
                    ChargerAction::Recharge
                }
            }
        }
        let mut w = tiny_world(100.0);
        let report = w.run(&mut RechargeOnce(false)).expect("run");
        assert_eq!(report.depot_visits, 0);
    }

    #[test]
    fn recharge_at_depot_refills_and_counts() {
        struct SpendThenRecharge(u32);
        impl ChargerPolicy for SpendThenRecharge {
            fn next_action(&mut self, view: &WorldView<'_>) -> ChargerAction {
                self.0 += 1;
                match self.0 {
                    1 => ChargerAction::MoveTo(Point::new(30.0, 0.0)),
                    2 => {
                        assert!(view.charger.energy_j() < view.charger.capacity_j());
                        ChargerAction::Recharge
                    }
                    _ => {
                        assert_eq!(view.charger.energy_j(), view.charger.capacity_j());
                        ChargerAction::Finish
                    }
                }
            }
        }
        let nodes: Vec<SensorNode> = (0..3)
            .map(|i| {
                SensorNode::with_battery(
                    Point::new(10.0 * (i + 1) as f64, 0.0),
                    Battery::new(100.0, 20.0),
                )
            })
            .collect();
        let net = Network::build(nodes, Point::ORIGIN, 12.0);
        let charger = MobileCharger::standard(Point::new(0.0, 5.0));
        let mut w = World::new(
            net,
            charger,
            WorldConfig {
                horizon_s: 10_000.0,
                depot: Some(Point::new(0.0, 5.0)),
                ..WorldConfig::default()
            },
        );
        let report = w.run(&mut SpendThenRecharge(0)).expect("run");
        assert_eq!(report.depot_visits, 1);
        // Energy used includes everything spent before the swap.
        assert!(report.charger_energy_used_j > 0.0);
        assert!(w
            .trace()
            .events()
            .iter()
            .any(|(_, e)| matches!(e, SimEvent::DepotSwap)));
    }

    #[test]
    fn world_time_monotone_under_mixed_actions() {
        struct Mixed(u32);
        impl ChargerPolicy for Mixed {
            fn next_action(&mut self, view: &WorldView<'_>) -> ChargerAction {
                self.0 += 1;
                match self.0 {
                    1 => ChargerAction::MoveTo(Point::new(20.0, 20.0)),
                    2 => ChargerAction::Wait(10.0),
                    3 => ChargerAction::Charge {
                        node: NodeId(1),
                        duration_s: 30.0,
                        mode: ChargeMode::Honest,
                    },
                    _ => {
                        assert!(view.time_s > 0.0);
                        ChargerAction::Finish
                    }
                }
            }
        }
        let mut w = tiny_world(1000.0);
        let report = w.run(&mut Mixed(0)).expect("run");
        assert!((report.final_time_s - 1000.0).abs() < 1e-9);
        assert_eq!(report.sessions, 1);
    }

    use crate::fault::{FaultConfig, FaultEvent, FaultPlan};

    #[test]
    fn empty_fault_plan_leaves_run_byte_identical() {
        let mut plain = tiny_world(1.0e6);
        let mut planned = tiny_world(1.0e6);
        planned.set_fault_plan(FaultPlan::none());
        assert!(planned.fault_injector().is_none());
        plain.run(&mut crate::policy::IdlePolicy).expect("run");
        planned.run(&mut crate::policy::IdlePolicy).expect("run");
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&planned).unwrap(),
            "FaultPlan::none() must not perturb the run"
        );
    }

    #[test]
    fn node_failure_fault_kills_node_with_residual_charge() {
        let mut w = tiny_world(1.0e6);
        w.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            at_s: 50.0,
            kind: FaultKind::NodeFailure { node: NodeId(1) },
        }]));
        w.run(&mut crate::policy::IdlePolicy).expect("run");
        let node = w.network().node(NodeId(1)).unwrap();
        assert!(node.has_failed());
        assert!(
            node.battery().level_j() > 0.0,
            "a crashed node keeps residual charge"
        );
        let death = w.trace().death_time_of(NodeId(1)).expect("death recorded");
        assert!((death - 50.0).abs() < 1e-9, "died at {death}, not 50 s");
        assert!(w.trace().events().iter().any(|(t, e)| *t == death
            && matches!(
                e,
                SimEvent::Fault {
                    fault: FaultKind::NodeFailure { node }
                } if *node == NodeId(1)
            )));
    }

    #[test]
    fn degradation_fault_reduces_delivered_energy() {
        let mut healthy = tiny_world(3600.0);
        healthy.set_battery_level(NodeId(2), 25.0).unwrap();
        healthy.run(&mut ChargeOnce(false)).expect("run");
        let full = healthy.trace().sessions()[0].delivered_j;

        let mut degraded = tiny_world(3600.0);
        degraded.set_battery_level(NodeId(2), 25.0).unwrap();
        degraded.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            at_s: 0.0,
            kind: FaultKind::Degradation {
                node: NodeId(2),
                factor: 1e-6,
            },
        }]));
        degraded.run(&mut ChargeOnce(false)).expect("run");
        let crippled = degraded.trace().sessions()[0].delivered_j;
        assert!(
            crippled < 0.05 * full,
            "degraded node stored {crippled} J vs healthy {full} J"
        );
    }

    #[test]
    fn charger_stall_fault_delays_the_next_move() {
        struct WaitThenMove(u32);
        impl ChargerPolicy for WaitThenMove {
            fn next_action(&mut self, _view: &WorldView<'_>) -> ChargerAction {
                self.0 += 1;
                match self.0 {
                    1 => ChargerAction::Wait(10.0),
                    2 => ChargerAction::MoveTo(Point::new(20.0, 20.0)),
                    _ => ChargerAction::Finish,
                }
            }
        }
        let move_end = |w: &World| {
            w.trace()
                .events()
                .iter()
                .find_map(|(t, e)| matches!(e, SimEvent::MoveEnded { .. }).then_some(*t))
                .expect("move ended")
        };
        let mut plain = tiny_world(10_000.0);
        plain.run(&mut WaitThenMove(0)).expect("run");
        let mut stalled = tiny_world(10_000.0);
        // The stall fires during the initial wait, so it is armed by the time
        // the move starts (a stall only delays moves started after it fires).
        stalled.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            at_s: 5.0,
            kind: FaultKind::ChargerStall { delay_s: 123.0 },
        }]));
        stalled.run(&mut WaitThenMove(0)).expect("run");
        assert!(
            (move_end(&stalled) - move_end(&plain) - 123.0).abs() < 1e-9,
            "stall must add exactly its delay to the move"
        );
    }

    #[test]
    fn request_loss_fault_delays_the_nodes_request() {
        let issue_time = |w: &World| {
            w.trace()
                .events()
                .iter()
                .find_map(|(t, e)| {
                    matches!(e, SimEvent::RequestIssued { node } if *node == NodeId(2))
                        .then_some(*t)
                })
                .expect("node 2 requests eventually")
        };
        let mut plain = tiny_world(1.0e6);
        plain.run(&mut crate::policy::IdlePolicy).expect("run");
        let mut lossy = tiny_world(1.0e6);
        lossy.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            at_s: 1.0,
            kind: FaultKind::RequestLoss { node: NodeId(2) },
        }]));
        lossy.run(&mut crate::policy::IdlePolicy).expect("run");
        // The threshold-crossing broadcast is lost; the charger only hears
        // node 2 when the request is re-issued at a later network event.
        assert!(
            issue_time(&lossy) > issue_time(&plain),
            "lost request must delay the charger hearing node 2 ({} vs {})",
            issue_time(&lossy),
            issue_time(&plain)
        );
    }

    #[test]
    fn fault_targeting_unknown_node_is_a_typed_error() {
        let mut w = tiny_world(1.0e6);
        w.set_fault_plan(FaultPlan::from_events(vec![FaultEvent {
            at_s: 10.0,
            kind: FaultKind::NodeFailure { node: NodeId(99) },
        }]));
        let err = w.advance_by(100.0).unwrap_err();
        assert_eq!(err, crate::error::SimError::FaultTarget(NodeId(99)));
    }

    #[test]
    fn advance_by_rejects_invalid_durations() {
        let mut w = tiny_world(1.0e6);
        assert!(w.advance_by(-1.0).is_err());
        assert!(w.advance_by(f64::NAN).is_err());
        assert!(w.advance_by(f64::INFINITY).is_err());
        w.advance_by(10.0).expect("valid duration");
        assert!((w.time_s() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_restore_readvance_is_bitwise_identical() {
        let cfg = FaultConfig {
            node_failures: 1,
            degradations: 1,
            request_losses: 1,
            ..FaultConfig::default()
        };
        let mut uninterrupted = tiny_world(1.0e6);
        uninterrupted.set_fault_plan(FaultPlan::generate(9, 3, 5.0e5, &cfg));
        uninterrupted.advance_by(40_000.0).expect("advance");
        let checkpoint = uninterrupted.snapshot();
        uninterrupted.advance_by(60_000.0).expect("advance");

        let mut resumed = tiny_world(1.0);
        resumed.restore(&checkpoint);
        assert_eq!(resumed.time_s(), checkpoint.world().time_s());
        resumed.advance_by(60_000.0).expect("advance");
        assert_eq!(
            serde_json::to_string(&uninterrupted).unwrap(),
            serde_json::to_string(&resumed).unwrap(),
            "restore + re-advance must be bitwise identical"
        );
    }

    #[test]
    fn checkpoint_serde_round_trips_through_world_shape() {
        let mut w = tiny_world(1.0e6);
        w.set_fault_plan(FaultPlan::generate(3, 3, 1.0e5, &FaultConfig::uniform(1)));
        w.advance_by(5_000.0).expect("advance");
        let checkpoint = w.snapshot();
        let json = serde_json::to_string(&checkpoint).unwrap();
        // The checkpoint's JSON *is* a world snapshot.
        let as_world: World = serde_json::from_str(&json).unwrap();
        assert_eq!(as_world.time_s(), w.time_s());
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        let mut restored = tiny_world(1.0);
        restored.restore(&back);
        restored.advance_by(20_000.0).expect("advance");
        w.advance_by(20_000.0).expect("advance");
        assert_eq!(
            serde_json::to_string(&w).unwrap(),
            serde_json::to_string(&restored).unwrap()
        );
    }
}
