//! Disk-backed checkpoint store: crash-safe persistence for [`Checkpoint`]s.
//!
//! A checkpoint file is a one-line versioned header followed by the JSON
//! world snapshot:
//!
//! ```text
//! WRSNCKPT v1 len=<payload bytes> fnv=<16 hex digits>\n
//! {"net":{...},"charger":{...},...}
//! ```
//!
//! Writes are atomic — the bytes go to a temp file in the target directory
//! which is fsynced and then renamed over the destination — so a reader (or a
//! resumed run) only ever sees the previous complete checkpoint or the new
//! complete checkpoint, never a torn one. Loads verify the magic, format
//! version, payload length, and FNV-1a checksum before parsing, and reject
//! anything that does not match with a typed [`StoreError`] (never a panic,
//! never silently wrong state).
//!
//! [`CheckpointPolicy`] + [`Checkpointer`] turn the store into a training-job
//! style periodic snapshotter: attach one to a [`World`] with
//! [`World::set_checkpointer`] and the run loop persists the world every N
//! *simulated* seconds, rolling a single "latest" file. Restoring that file
//! and re-advancing reproduces the uninterrupted trajectory bitwise (see
//! `crates/sim/tests/checkpoint_restore.rs`).
//!
//! The payload after the header line is exactly the world's forensic JSON
//! snapshot, so `tail -n +2 file.ckpt` yields a document the `wrsn audit`
//! command understands.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::obs::{Counter, Recorder};
use crate::world::{Checkpoint, World};

/// Magic string opening every checkpoint header.
pub const MAGIC: &str = "WRSNCKPT";

/// On-disk format version. Bump when the header or payload shape changes.
pub const FORMAT_VERSION: u64 = 1;

/// Errors from the checkpoint store.
///
/// Carries the offending path and a machine-checkable reason; I/O details are
/// captured as strings so the error stays `Clone + PartialEq` (and therefore
/// composable into [`crate::SimError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// An OS-level read/write/rename failed.
    Io {
        /// What was being attempted.
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// Stringified [`std::io::Error`].
        detail: String,
    },
    /// The file does not open with [`MAGIC`] — not a checkpoint at all.
    BadMagic {
        /// The rejected file.
        path: PathBuf,
    },
    /// The header declares a format version this build cannot read.
    UnsupportedVersion {
        /// The rejected file.
        path: PathBuf,
        /// The declared version.
        version: u64,
    },
    /// The header line is present but malformed (missing or unparsable
    /// fields).
    MalformedHeader {
        /// The rejected file.
        path: PathBuf,
        /// What failed to parse.
        detail: String,
    },
    /// The payload is shorter or longer than the header declares — a torn or
    /// tampered write.
    Truncated {
        /// The rejected file.
        path: PathBuf,
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The payload's FNV-1a checksum does not match the header.
    ChecksumMismatch {
        /// The rejected file.
        path: PathBuf,
    },
    /// The checksummed payload is not a parsable world snapshot.
    Payload {
        /// The rejected file.
        path: PathBuf,
        /// The deserializer's complaint.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, detail } => {
                write!(f, "cannot {op} {}: {detail}", path.display())
            }
            StoreError::BadMagic { path } => {
                write!(f, "{}: not a {MAGIC} checkpoint file", path.display())
            }
            StoreError::UnsupportedVersion { path, version } => write!(
                f,
                "{}: checkpoint format v{version} not supported (this build reads v{FORMAT_VERSION})",
                path.display()
            ),
            StoreError::MalformedHeader { path, detail } => {
                write!(f, "{}: malformed checkpoint header: {detail}", path.display())
            }
            StoreError::Truncated {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{}: checkpoint payload truncated or padded ({actual} bytes, header declares {expected})",
                path.display()
            ),
            StoreError::ChecksumMismatch { path } => write!(
                f,
                "{}: checkpoint payload corrupted (checksum mismatch)",
                path.display()
            ),
            StoreError::Payload { path, detail } => write!(
                f,
                "{}: checkpoint payload is not a world snapshot: {detail}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Streaming FNV-1a (64-bit) hasher — the store's dependency-free checksum,
/// also used by the bench harness to digest experiment outputs.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Feeds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// FNV-1a of one byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Io {
        op,
        path: path.to_path_buf(),
        detail: e.to_string(),
    }
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename. A crash mid-write leaves the previous file (or nothing)
/// intact, never a torn one.
///
/// # Errors
///
/// Returns [`StoreError::Io`] when any filesystem step fails; the temp file
/// is cleaned up on a failed rename.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir).map_err(|e| io_err("create directory for", path, &e))?;
    }
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "checkpoint".to_string());
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
    let result = (|| {
        let mut file = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, &e))?;
        file.write_all(bytes)
            .map_err(|e| io_err("write", &tmp, &e))?;
        file.sync_all().map_err(|e| io_err("sync", &tmp, &e))?;
        drop(file);
        fs::rename(&tmp, path).map_err(|e| io_err("rename into place", path, &e))
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Serializes `checkpoint` and writes it to `path` atomically under the
/// versioned, checksummed header.
///
/// # Errors
///
/// Returns [`StoreError::Payload`] if the snapshot cannot be serialized
/// (non-finite floats) or [`StoreError::Io`] on filesystem failure.
pub fn save(path: &Path, checkpoint: &Checkpoint) -> Result<(), StoreError> {
    let payload = serde_json::to_string(checkpoint).map_err(|e| StoreError::Payload {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })?;
    let mut bytes = format!(
        "{MAGIC} v{FORMAT_VERSION} len={} fnv={:016x}\n",
        payload.len(),
        fnv1a64(payload.as_bytes())
    );
    bytes.push_str(&payload);
    write_atomic(path, bytes.as_bytes())
}

fn header_field<'a>(field: &'a str, key: &str, path: &Path) -> Result<&'a str, StoreError> {
    field
        .strip_prefix(key)
        .and_then(|f| f.strip_prefix('='))
        .ok_or_else(|| StoreError::MalformedHeader {
            path: path.to_path_buf(),
            detail: format!("expected `{key}=<value>`, found `{field}`"),
        })
}

/// Loads and fully validates a checkpoint written by [`save`].
///
/// # Errors
///
/// Every way a file can be wrong has a dedicated [`StoreError`] variant:
/// missing file ([`StoreError::Io`]), foreign content
/// ([`StoreError::BadMagic`]), future format
/// ([`StoreError::UnsupportedVersion`]), malformed header, torn write
/// ([`StoreError::Truncated`]), bit rot ([`StoreError::ChecksumMismatch`]),
/// or an unparsable payload ([`StoreError::Payload`]).
pub fn load(path: &Path) -> Result<Checkpoint, StoreError> {
    let text = fs::read_to_string(path).map_err(|e| io_err("read", path, &e))?;
    let (header, payload) = match text.split_once('\n') {
        Some(split) => split,
        None => {
            // No newline at all: either foreign content or a header torn
            // before its terminator.
            if text.starts_with(MAGIC) {
                return Err(StoreError::MalformedHeader {
                    path: path.to_path_buf(),
                    detail: "header line is not newline-terminated".to_string(),
                });
            }
            return Err(StoreError::BadMagic {
                path: path.to_path_buf(),
            });
        }
    };
    let mut fields = header.split(' ');
    if fields.next() != Some(MAGIC) {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let version = fields
        .next()
        .and_then(|f| f.strip_prefix('v'))
        .and_then(|v| v.parse::<u64>().ok())
        .ok_or_else(|| StoreError::MalformedHeader {
            path: path.to_path_buf(),
            detail: "missing `v<version>` field".to_string(),
        })?;
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: path.to_path_buf(),
            version,
        });
    }
    let len_field = fields.next().ok_or_else(|| StoreError::MalformedHeader {
        path: path.to_path_buf(),
        detail: "missing `len=` field".to_string(),
    })?;
    let expected: usize =
        header_field(len_field, "len", path)?
            .parse()
            .map_err(|_| StoreError::MalformedHeader {
                path: path.to_path_buf(),
                detail: format!("unparsable `{len_field}`"),
            })?;
    let fnv_field = fields.next().ok_or_else(|| StoreError::MalformedHeader {
        path: path.to_path_buf(),
        detail: "missing `fnv=` field".to_string(),
    })?;
    let checksum =
        u64::from_str_radix(header_field(fnv_field, "fnv", path)?, 16).map_err(|_| {
            StoreError::MalformedHeader {
                path: path.to_path_buf(),
                detail: format!("unparsable `{fnv_field}`"),
            }
        })?;
    if payload.len() != expected {
        return Err(StoreError::Truncated {
            path: path.to_path_buf(),
            expected,
            actual: payload.len(),
        });
    }
    if fnv1a64(payload.as_bytes()) != checksum {
        return Err(StoreError::ChecksumMismatch {
            path: path.to_path_buf(),
        });
    }
    serde_json::from_str(payload).map_err(|e| StoreError::Payload {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })
}

/// How often an attached [`Checkpointer`] persists the world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPolicy {
    /// Interval between checkpoints, *simulated* seconds.
    pub every_sim_s: f64,
}

impl CheckpointPolicy {
    /// A policy snapshotting every `every_sim_s` simulated seconds.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or non-positive interval (callers validating
    /// user input should check before constructing).
    pub fn every(every_sim_s: f64) -> Self {
        assert!(
            every_sim_s.is_finite() && every_sim_s > 0.0,
            "checkpoint interval must be finite and positive, got {every_sim_s}"
        );
        CheckpointPolicy { every_sim_s }
    }
}

/// Periodic on-disk snapshotter attached to a [`World`] via
/// [`World::set_checkpointer`].
///
/// The run loop calls into it at segment boundaries; whenever the simulation
/// clock crosses the next due instant the world is serialized and atomically
/// rolled into the single target file (the "latest valid checkpoint"). Pure
/// observation: attaching a checkpointer never perturbs the trajectory, and
/// the checkpointer itself is never part of a snapshot.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    policy: CheckpointPolicy,
    path: PathBuf,
    next_due_s: f64,
    written: u64,
}

impl Checkpointer {
    /// A checkpointer rolling its snapshots into `path` under `policy`.
    pub fn new(path: impl Into<PathBuf>, policy: CheckpointPolicy) -> Self {
        Checkpointer {
            policy,
            path: path.into(),
            next_due_s: policy.every_sim_s,
            written: 0,
        }
    }

    /// The file snapshots roll into.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The policy in force.
    pub fn policy(&self) -> CheckpointPolicy {
        self.policy
    }

    /// Checkpoints written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Re-arms the first due instant relative to `now_s` (called when the
    /// checkpointer is attached to a world mid-run).
    pub(crate) fn armed_at(mut self, now_s: f64) -> Self {
        self.next_due_s = now_s + self.policy.every_sim_s;
        self
    }

    /// Whether the clock has crossed the next due instant.
    pub(crate) fn due(&self, now_s: f64) -> bool {
        now_s >= self.next_due_s
    }

    /// Persists `world` if due and advances the schedule past its clock.
    pub(crate) fn write_due(
        &mut self,
        world: &World,
        rec: &mut dyn Recorder,
    ) -> Result<(), StoreError> {
        let now_s = world.time_s();
        if !self.due(now_s) {
            return Ok(());
        }
        save(&self.path, &world.snapshot())?;
        self.written += 1;
        rec.add(Counter::CheckpointsWritten, 1);
        while self.next_due_s <= now_s {
            self.next_due_s += self.policy.every_sim_s;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "wrsn_store_{tag}_{}_{}.ckpt",
            std::process::id(),
            seq
        ))
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn write_atomic_replaces_previous_content() {
        let path = temp_path("atomic");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn load_rejects_missing_foreign_and_future_files() {
        let path = temp_path("reject");
        assert!(matches!(
            load(&path),
            Err(StoreError::Io { op: "read", .. })
        ));
        fs::write(&path, "not a checkpoint\n{}").unwrap();
        assert!(matches!(load(&path), Err(StoreError::BadMagic { .. })));
        fs::write(
            &path,
            format!("{MAGIC} v999 len=2 fnv={:016x}\n{{}}", fnv1a64(b"{}")),
        )
        .unwrap();
        assert!(matches!(
            load(&path),
            Err(StoreError::UnsupportedVersion { version: 999, .. })
        ));
        fs::write(&path, format!("{MAGIC} v1 len=abc fnv=0\n{{}}")).unwrap();
        assert!(matches!(
            load(&path),
            Err(StoreError::MalformedHeader { .. })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_policy_rejects_bad_intervals() {
        assert!(std::panic::catch_unwind(|| CheckpointPolicy::every(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| CheckpointPolicy::every(-5.0)).is_err());
        assert!(std::panic::catch_unwind(|| CheckpointPolicy::every(f64::NAN)).is_err());
        assert_eq!(CheckpointPolicy::every(10.0).every_sim_s, 10.0);
    }
}
