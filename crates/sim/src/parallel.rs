//! Dependency-free data parallelism for simulation campaigns.
//!
//! Heavy experiments repeat independent deterministic trials (one RNG seed
//! per trial, or one scenario per condition), so they parallelize trivially:
//! [`map_indexed`] fans the trial indices out over scoped threads and
//! returns results **in index order**, which keeps every downstream table
//! byte-identical to a sequential run.
//!
//! [`try_map_indexed`] is the panic-safe variant the `exp` runner uses: a
//! worker panic is caught ([`std::panic::catch_unwind`]), the failed index is
//! retried with backoff, and a terminal failure comes back as a typed
//! [`WorkerError`] in that index's slot instead of tearing down the whole
//! campaign — every healthy index still returns its result.
//!
//! The worker count comes from the `WRSN_THREADS` environment variable when
//! set (the `exp` runner's `--threads` flag sets it), otherwise from
//! [`std::thread::available_parallelism`]. `WRSN_THREADS=1` is the
//! determinism escape hatch: it degenerates to a plain sequential loop on
//! the calling thread — though order-preserving collection means the output
//! is the same either way.

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Environment variable overriding the worker thread count.
pub const THREADS_ENV: &str = "WRSN_THREADS";

/// The worker thread count: `WRSN_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// A work item that kept panicking after every allowed attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerError {
    /// The failed index in `0..count`.
    pub index: usize,
    /// Attempts made (1 initial + retries).
    pub attempts: usize,
    /// The panic payload, stringified (`&str`/`String` payloads verbatim,
    /// anything else as a placeholder).
    pub message: String,
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "work item {} panicked after {} attempt{}: {}",
            self.index,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

impl std::error::Error for WorkerError {}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f(index)` with up to `retries` re-attempts after a panic, sleeping
/// `10ms << attempt` between attempts (transient-failure backoff).
fn attempt_with_retries<T, F>(index: usize, retries: usize, f: &F) -> Result<T, WorkerError>
where
    F: Fn(usize) -> T + Sync,
{
    let mut last = String::new();
    for attempt in 0..=retries {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(10u64 << (attempt - 1).min(6)));
        }
        match catch_unwind(AssertUnwindSafe(|| f(index))) {
            Ok(value) => return Ok(value),
            Err(payload) => last = payload_message(payload.as_ref()),
        }
    }
    Err(WorkerError {
        index,
        attempts: retries + 1,
        message: last,
    })
}

/// Maps `f` over `0..count` on up to [`threads`] scoped worker threads and
/// returns the results in index order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven per-index
/// cost does not idle workers. With one worker (or one item) this is a plain
/// sequential loop. A panic in `f` is propagated to the caller; campaigns
/// that must survive a poisoned work item use [`try_map_indexed`] instead.
pub fn map_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_map_indexed(count, 0, f)
        .into_iter()
        .map(|result| match result {
            Ok(value) => value,
            Err(e) => panic!("{e}"),
        })
        .collect()
}

/// Panic-safe [`map_indexed`]: catches worker panics, retries each failed
/// index up to `retries` more times with exponential backoff, and returns one
/// `Result` per index — in index order — so one poisoned work item cannot
/// take down the rest of the campaign.
///
/// The harness itself stays deterministic: results (and errors) land in index
/// order regardless of worker count or retry timing.
pub fn try_map_indexed<T, F>(count: usize, retries: usize, f: F) -> Vec<Result<T, WorkerError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(count);
    if workers <= 1 {
        return (0..count)
            .map(|index| attempt_with_retries(index, retries, &f))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, Result<T, WorkerError>)> = Vec::with_capacity(count);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= count {
                            break;
                        }
                        local.push((index, attempt_with_retries(index, retries, &f)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => indexed.extend(part),
                // Workers catch panics in `f`; a join failure means the
                // harness itself is broken, which is not survivable.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    indexed.sort_by_key(|&(index, _)| index);
    indexed.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = map_indexed(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        assert_eq!(map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn uneven_workloads_preserve_order() {
        let out = map_indexed(20, |i| {
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_survives_a_panicking_index() {
        let out = try_map_indexed(8, 0, |i| {
            if i == 3 {
                panic!("index three is poisoned");
            }
            i * 10
        });
        assert_eq!(out.len(), 8);
        for (i, result) in out.iter().enumerate() {
            if i == 3 {
                let e = result.as_ref().unwrap_err();
                assert_eq!(e.index, 3);
                assert_eq!(e.attempts, 1);
                assert!(e.message.contains("poisoned"), "message: {}", e.message);
            } else {
                assert_eq!(*result.as_ref().unwrap(), i * 10);
            }
        }
    }

    #[test]
    fn try_map_retries_transient_panics() {
        use std::sync::atomic::AtomicUsize;
        let attempts = AtomicUsize::new(0);
        let out = try_map_indexed(1, 2, |_| {
            // Fails twice, then succeeds: a transient fault survives retries.
            if attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            42
        });
        assert_eq!(out, vec![Ok(42)]);
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn try_map_reports_attempt_count_on_terminal_failure() {
        let out = try_map_indexed(1, 2, |_| -> usize { panic!("always") });
        let e = out[0].as_ref().unwrap_err();
        assert_eq!(e.attempts, 3);
        assert_eq!(e.message, "always");
        assert!(e.to_string().contains("3 attempts"));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn map_indexed_still_propagates_panics() {
        map_indexed(4, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
