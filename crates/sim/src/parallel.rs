//! Dependency-free data parallelism for simulation campaigns.
//!
//! Heavy experiments repeat independent deterministic trials (one RNG seed
//! per trial, or one scenario per condition), so they parallelize trivially:
//! [`map_indexed`] fans the trial indices out over scoped threads and
//! returns results **in index order**, which keeps every downstream table
//! byte-identical to a sequential run.
//!
//! [`try_map_indexed`] is the panic-safe variant the `exp` runner uses: a
//! worker panic is caught ([`std::panic::catch_unwind`]), the failed index is
//! retried with backoff, and a terminal failure comes back as a typed
//! [`WorkerError`] in that index's slot instead of tearing down the whole
//! campaign — every healthy index still returns its result.
//!
//! [`try_map_indexed_watched`] adds a **watchdog**: each work item gets a
//! fresh [`crate::cancel::CancelToken`] installed as its thread's current
//! token, and a monitor thread cancels any item that outlives its wall-clock
//! deadline. The simulation engine polls the token between integration
//! segments ([`crate::SimError::Cancelled`]), so a hung experiment unwinds
//! cooperatively and is reported as a typed [`FailureKind::Timeout`] — the
//! rest of the campaign completes. Timeouts are never retried (they would
//! only burn the deadline again).
//!
//! Workers inherit the spawning thread's current cancellation token, so
//! nested fan-outs (an experiment calling [`map_indexed`] for its inner
//! trials) stay cancellable under their ancestor's deadline.
//!
//! The worker count comes from the `WRSN_THREADS` environment variable when
//! set (the `exp` runner's `--threads` flag sets it), otherwise from
//! [`std::thread::available_parallelism`]. `WRSN_THREADS=1` is the
//! determinism escape hatch: it degenerates to a plain sequential loop on
//! the calling thread — though order-preserving collection means the output
//! is the same either way.

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::cancel::{self, CancelToken, ScopedCancel};

/// Environment variable overriding the worker thread count.
pub const THREADS_ENV: &str = "WRSN_THREADS";

/// Environment variable carrying a default per-work-item wall-clock deadline,
/// seconds (the `exp` runner's `--timeout-s` flag overrides it). Read by the
/// harness binaries, not by this module.
pub const TIMEOUT_ENV: &str = "WRSN_TIMEOUT_S";

/// Environment variable overriding the engine's spatial shard count (see
/// [`crate::World::set_shards`]). Unset, non-numeric or zero means unsharded.
pub const SHARDS_ENV: &str = "WRSN_SHARDS";

/// Test-only environment variable: when set to a shard index, the engine's
/// parallel shard executor panics inside that shard's worker on its first
/// segment, exercising the panic-to-[`crate::SimError`] propagation path.
/// Read once per process (see [`forced_shard_panic`]).
pub const FORCE_SHARD_PANIC_ENV: &str = "WRSN_FORCE_SHARD_PANIC";

/// The shard index [`FORCE_SHARD_PANIC_ENV`] poisons, if any. Cached in a
/// `OnceLock` so the hot loop never re-reads the environment.
pub fn forced_shard_panic() -> Option<usize> {
    static FORCED: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var(FORCE_SHARD_PANIC_ENV)
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
    })
}

/// The engine's spatial shard count: `WRSN_SHARDS` if set to a positive
/// integer, otherwise 1 (unsharded). Sharding never changes simulation
/// output, so unlike [`threads`] there is no machine-derived default.
pub fn shards() -> usize {
    match std::env::var(SHARDS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => 1,
    }
}

/// The worker thread count: `WRSN_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Why a work item terminally failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The item panicked on every allowed attempt.
    Panic,
    /// The watchdog cancelled the item at its wall-clock deadline.
    Timeout,
}

/// A work item that failed terminally: it kept panicking after every allowed
/// attempt, or the watchdog cancelled it at its deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerError {
    /// The failed index in `0..count`.
    pub index: usize,
    /// Attempts made (1 initial + retries).
    pub attempts: usize,
    /// What killed it.
    pub kind: FailureKind,
    /// For [`FailureKind::Panic`]: the panic payload, stringified
    /// (`&str`/`String` payloads verbatim, anything else as a placeholder).
    /// For [`FailureKind::Timeout`]: the exceeded deadline.
    pub message: String,
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FailureKind::Panic => write!(
                f,
                "work item {} panicked after {} attempt{}: {}",
                self.index,
                self.attempts,
                if self.attempts == 1 { "" } else { "s" },
                self.message
            ),
            FailureKind::Timeout => {
                write!(f, "work item {} timed out: {}", self.index, self.message)
            }
        }
    }
}

impl std::error::Error for WorkerError {}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One work item's supervision slot: the watchdog reads the start instant and
/// cancels the token of any in-flight attempt past its deadline.
type Slot = Mutex<Option<(Instant, CancelToken)>>;

/// Runs `f(index)` with up to `retries` re-attempts after a panic, sleeping
/// `10ms << attempt` between attempts (transient-failure backoff). With a
/// supervision `slot`, each attempt runs under a fresh cancellation token
/// registered for the watchdog; a cancelled attempt is a terminal
/// [`FailureKind::Timeout`] (no retry).
fn attempt_with_retries<T, F>(
    index: usize,
    retries: usize,
    slot: Option<&Slot>,
    inherited: &Option<CancelToken>,
    f: &F,
) -> Result<T, WorkerError>
where
    F: Fn(usize) -> T + Sync,
{
    let mut last = String::new();
    for attempt in 0..=retries {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(10u64 << (attempt - 1).min(6)));
        }
        let token = match slot {
            Some(slot) => {
                let token = CancelToken::new();
                *slot.lock().unwrap() = Some((Instant::now(), token.clone()));
                Some(token)
            }
            None => None,
        };
        // Install the per-attempt token (supervised) or the spawning thread's
        // token (inherited) so nested fan-outs and the sim engine see it.
        let guard = token
            .clone()
            .or_else(|| inherited.clone())
            .map(ScopedCancel::install);
        let result = catch_unwind(AssertUnwindSafe(|| f(index)));
        drop(guard);
        if let Some(slot) = slot {
            *slot.lock().unwrap() = None;
        }
        let timed_out = token.as_ref().is_some_and(CancelToken::is_cancelled);
        match result {
            // A result that beat the watchdog by a hair still counts.
            Ok(value) => return Ok(value),
            Err(_) if timed_out => {
                return Err(WorkerError {
                    index,
                    attempts: attempt + 1,
                    kind: FailureKind::Timeout,
                    message: "cancelled at its wall-clock deadline".to_string(),
                });
            }
            Err(payload) => last = payload_message(payload.as_ref()),
        }
    }
    Err(WorkerError {
        index,
        attempts: retries + 1,
        kind: FailureKind::Panic,
        message: last,
    })
}

/// Maps `f` over `0..count` on up to [`threads`] scoped worker threads and
/// returns the results in index order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven per-index
/// cost does not idle workers. With one worker (or one item) this is a plain
/// sequential loop. A panic in `f` is propagated to the caller; campaigns
/// that must survive a poisoned work item use [`try_map_indexed`] instead.
pub fn map_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_map_indexed(count, 0, f)
        .into_iter()
        .map(|result| match result {
            Ok(value) => value,
            Err(e) => panic!("{e}"),
        })
        .collect()
}

/// Panic-safe [`map_indexed`]: catches worker panics, retries each failed
/// index up to `retries` more times with exponential backoff, and returns one
/// `Result` per index — in index order — so one poisoned work item cannot
/// take down the rest of the campaign.
///
/// The harness itself stays deterministic: results (and errors) land in index
/// order regardless of worker count or retry timing.
pub fn try_map_indexed<T, F>(count: usize, retries: usize, f: F) -> Vec<Result<T, WorkerError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_map_indexed_watched(count, retries, None, f)
}

/// [`try_map_indexed`] under watchdog supervision: with `deadline` set, any
/// work item whose in-flight attempt outlives the deadline has its
/// cancellation token fired by a monitor thread and comes back as a typed
/// [`FailureKind::Timeout`] failure — the remaining items run to completion.
///
/// Cancellation is cooperative (see [`crate::cancel`]): the simulation engine
/// polls between integration segments, so a cancelled experiment unwinds at
/// the next segment boundary. Code that never polls cannot be interrupted.
pub fn try_map_indexed_watched<T, F>(
    count: usize,
    retries: usize,
    deadline: Option<Duration>,
    f: F,
) -> Vec<Result<T, WorkerError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let inherited = cancel::current();
    let workers = threads().min(count);
    if deadline.is_none() && workers <= 1 {
        return (0..count)
            .map(|index| attempt_with_retries(index, retries, None, &inherited, &f))
            .collect();
    }
    let slots: Vec<Slot> = match deadline {
        Some(_) => (0..count).map(|_| Mutex::new(None)).collect(),
        None => Vec::new(),
    };
    let cursor = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let mut indexed: Vec<(usize, Result<T, WorkerError>)> = Vec::with_capacity(count);
    std::thread::scope(|scope| {
        let watchdog = deadline.map(|deadline| {
            let slots = &slots;
            let done = &done;
            // Poll an order of magnitude below the deadline (clamped to
            // [1ms, 25ms]) so overshoot stays small without busy-waiting.
            let poll = (deadline / 10).clamp(Duration::from_millis(1), Duration::from_millis(25));
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    for slot in slots {
                        let running = slot.lock().unwrap();
                        if let Some((started, token)) = running.as_ref() {
                            if started.elapsed() >= deadline {
                                token.cancel();
                            }
                        }
                    }
                    std::thread::sleep(poll);
                }
            })
        });
        let handles: Vec<_> = (0..workers.max(1))
            .map(|_| {
                let inherited = &inherited;
                let slots = &slots;
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= count {
                            break;
                        }
                        let slot = slots.get(index);
                        local.push((
                            index,
                            attempt_with_retries(index, retries, slot, inherited, f),
                        ));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => indexed.extend(part),
                // Workers catch panics in `f`; a join failure means the
                // harness itself is broken, which is not survivable.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        done.store(true, Ordering::Release);
        if let Some(watchdog) = watchdog {
            if let Err(payload) = watchdog.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    indexed.sort_by_key(|&(index, _)| index);
    indexed.into_iter().map(|(_, value)| value).collect()
}

/// Fans `f(index, &mut slots[index])` over up to `workers` scoped threads,
/// each worker owning a contiguous chunk of `slots` — the engine's per-shard
/// scatter primitive, where each slot is a shard's private accumulator.
///
/// Unlike [`try_map_indexed`] there is no dynamic cursor and no retry: shard
/// work is deterministic (a panic would only repeat) and slot results are
/// merged by the caller in slot order, so static chunking keeps the harness
/// minimal. Workers inherit the spawning thread's cancellation token (nested
/// polls inside `f` observe the ancestor's deadline), and a panic in `f` is
/// caught per item and reported as the lowest-index [`WorkerError`]; the
/// remaining items in other chunks still run.
///
/// With one worker (or one slot) this degenerates to a plain sequential loop
/// on the calling thread.
pub fn scatter<T, F>(workers: usize, slots: &mut [T], f: F) -> Result<(), WorkerError>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let count = slots.len();
    let workers = workers.clamp(1, count.max(1));
    let inherited = cancel::current();
    if workers <= 1 {
        // Calling thread already holds `inherited` as its current token.
        for (index, slot) in slots.iter_mut().enumerate() {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(index, slot))) {
                return Err(WorkerError {
                    index,
                    attempts: 1,
                    kind: FailureKind::Panic,
                    message: payload_message(payload.as_ref()),
                });
            }
        }
        return Ok(());
    }
    let chunk = count.div_ceil(workers);
    let mut first_error: Option<WorkerError> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = slots
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, part)| {
                let inherited = &inherited;
                let f = &f;
                scope.spawn(move || {
                    let base = c * chunk;
                    for (k, slot) in part.iter_mut().enumerate() {
                        let index = base + k;
                        let guard = inherited.clone().map(ScopedCancel::install);
                        let result = catch_unwind(AssertUnwindSafe(|| f(index, slot)));
                        drop(guard);
                        if let Err(payload) = result {
                            // First failure in this chunk wins; later slots in
                            // the chunk are left untouched (the caller discards
                            // all slots on error).
                            return Err(WorkerError {
                                index,
                                attempts: 1,
                                kind: FailureKind::Panic,
                                message: payload_message(payload.as_ref()),
                            });
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if first_error.as_ref().is_none_or(|f| e.index < f.index) {
                        first_error = Some(e);
                    }
                }
                // Workers catch panics in `f`; a join failure means the
                // harness itself is broken, which is not survivable.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    match first_error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = map_indexed(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        assert_eq!(map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn uneven_workloads_preserve_order() {
        let out = map_indexed(20, |i| {
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_survives_a_panicking_index() {
        let out = try_map_indexed(8, 0, |i| {
            if i == 3 {
                panic!("index three is poisoned");
            }
            i * 10
        });
        assert_eq!(out.len(), 8);
        for (i, result) in out.iter().enumerate() {
            if i == 3 {
                let e = result.as_ref().unwrap_err();
                assert_eq!(e.index, 3);
                assert_eq!(e.attempts, 1);
                assert_eq!(e.kind, FailureKind::Panic);
                assert!(e.message.contains("poisoned"), "message: {}", e.message);
            } else {
                assert_eq!(*result.as_ref().unwrap(), i * 10);
            }
        }
    }

    #[test]
    fn try_map_retries_transient_panics() {
        use std::sync::atomic::AtomicUsize;
        let attempts = AtomicUsize::new(0);
        let out = try_map_indexed(1, 2, |_| {
            // Fails twice, then succeeds: a transient fault survives retries.
            if attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            42
        });
        assert_eq!(out, vec![Ok(42)]);
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn try_map_reports_attempt_count_on_terminal_failure() {
        let out = try_map_indexed(1, 2, |_| -> usize { panic!("always") });
        let e = out[0].as_ref().unwrap_err();
        assert_eq!(e.attempts, 3);
        assert_eq!(e.kind, FailureKind::Panic);
        assert_eq!(e.message, "always");
        assert!(e.to_string().contains("3 attempts"));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn map_indexed_still_propagates_panics() {
        map_indexed(4, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn watchdog_cancels_a_cooperative_hang_and_spares_the_rest() {
        let out = try_map_indexed_watched(4, 3, Some(Duration::from_millis(80)), |i| {
            if i == 1 {
                // A cooperative hang: spins until its token fires, exactly
                // like a world polling between segments.
                while !cancel::cancelled() {
                    std::thread::sleep(Duration::from_millis(2));
                }
                panic!("unwound after cancellation");
            }
            i * 10
        });
        let e = out[1].as_ref().unwrap_err();
        assert_eq!(e.kind, FailureKind::Timeout);
        assert_eq!(e.attempts, 1, "timeouts are terminal, never retried");
        assert!(e.to_string().contains("timed out"), "display: {e}");
        for (i, result) in out.iter().enumerate() {
            if i != 1 {
                assert_eq!(*result.as_ref().unwrap(), i * 10);
            }
        }
    }

    #[test]
    fn watchdog_leaves_fast_items_untouched() {
        let out = try_map_indexed_watched(6, 0, Some(Duration::from_secs(30)), |i| i + 1);
        for (i, result) in out.iter().enumerate() {
            assert_eq!(*result.as_ref().unwrap(), i + 1);
        }
    }

    #[test]
    fn workers_inherit_the_spawning_threads_cancel_token() {
        let token = CancelToken::new();
        token.cancel();
        let _guard = ScopedCancel::install(token);
        // Every worker (including nested spawns) must observe the ancestor's
        // cancelled token.
        let seen = try_map_indexed(4, 0, |_| cancel::cancelled());
        assert!(seen.into_iter().all(|r| r.unwrap()));
    }

    #[test]
    fn panicking_worker_leaves_no_stale_token_on_its_thread() {
        // `count == 1` degenerates to the sequential path, so the work item
        // runs on *this* thread — the same thread the next request would
        // reuse in a pooled scheduler. The item installs its own (cancelled)
        // scope and panics; after the harness catches the unwind, this
        // thread's token state must be exactly what it was before.
        assert!(cancel::current().is_none());
        let out = try_map_indexed(1, 0, |_| -> usize {
            let poisoned = CancelToken::new();
            poisoned.cancel();
            let _guard = ScopedCancel::install(poisoned);
            panic!("worker died holding a cancel scope");
        });
        assert_eq!(out[0].as_ref().unwrap_err().kind, FailureKind::Panic);
        assert!(
            cancel::current().is_none(),
            "a caught worker panic must not leave its cancel token installed"
        );
        // The "reused thread" then serves an unrelated item: it must not see
        // a stale cancellation.
        let seen = try_map_indexed(1, 0, |_| cancel::cancelled());
        assert_eq!(seen[0].as_ref().unwrap(), &false);
    }

    #[test]
    fn a_panic_without_cancellation_is_still_a_panic_under_supervision() {
        let out = try_map_indexed_watched(1, 0, Some(Duration::from_secs(30)), |_| -> usize {
            panic!("genuine bug")
        });
        let e = out[0].as_ref().unwrap_err();
        assert_eq!(e.kind, FailureKind::Panic);
        assert!(e.message.contains("genuine bug"));
    }

    #[test]
    fn scatter_fills_every_slot_at_any_worker_count() {
        for workers in [1, 2, 3, 7, 16] {
            let mut slots = vec![0usize; 11];
            scatter(workers, &mut slots, |i, slot| *slot = i * i).unwrap();
            assert_eq!(
                slots,
                (0..11).map(|i| i * i).collect::<Vec<_>>(),
                "workers {workers}"
            );
        }
    }

    #[test]
    fn scatter_reports_the_lowest_poisoned_slot() {
        for workers in [1, 4] {
            let mut slots = vec![0usize; 8];
            let e = scatter(workers, &mut slots, |i, slot| {
                if i == 5 || i == 2 {
                    panic!("slot {i} poisoned");
                }
                *slot = i;
            })
            .unwrap_err();
            assert_eq!(e.index, 2, "workers {workers}");
            assert_eq!(e.kind, FailureKind::Panic);
            assert!(e.message.contains("poisoned"), "message: {}", e.message);
        }
    }

    #[test]
    fn scatter_workers_inherit_the_cancel_token() {
        let token = CancelToken::new();
        token.cancel();
        let _guard = ScopedCancel::install(token);
        let mut seen = vec![false; 6];
        scatter(3, &mut seen, |_, slot| *slot = cancel::cancelled()).unwrap();
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn scatter_handles_empty_and_single_slots() {
        let mut empty: Vec<usize> = Vec::new();
        scatter(4, &mut empty, |_, _| unreachable!()).unwrap();
        let mut one = vec![0usize];
        scatter(4, &mut one, |i, slot| *slot = i + 9).unwrap();
        assert_eq!(one, vec![9]);
    }
}
