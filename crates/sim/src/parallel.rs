//! Dependency-free data parallelism for simulation campaigns.
//!
//! Heavy experiments repeat independent deterministic trials (one RNG seed
//! per trial, or one scenario per condition), so they parallelize trivially:
//! [`map_indexed`] fans the trial indices out over scoped threads and
//! returns results **in index order**, which keeps every downstream table
//! byte-identical to a sequential run.
//!
//! The worker count comes from the `WRSN_THREADS` environment variable when
//! set (the `exp` runner's `--threads` flag sets it), otherwise from
//! [`std::thread::available_parallelism`]. `WRSN_THREADS=1` is the
//! determinism escape hatch: it degenerates to a plain sequential loop on
//! the calling thread — though order-preserving collection means the output
//! is the same either way.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the worker thread count.
pub const THREADS_ENV: &str = "WRSN_THREADS";

/// The worker thread count: `WRSN_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Maps `f` over `0..count` on up to [`threads`] scoped worker threads and
/// returns the results in index order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven per-index
/// cost does not idle workers. With one worker (or one item) this is a plain
/// sequential loop. A panic in `f` is propagated to the caller.
pub fn map_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(count);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= count {
                            break;
                        }
                        local.push((index, f(index)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => indexed.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    indexed.sort_by_key(|&(index, _)| index);
    indexed.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = map_indexed(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        assert_eq!(map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn uneven_workloads_preserve_order() {
        let out = map_indexed(20, |i| {
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }
}
