//! The charging-request queue.
//!
//! When a node's battery falls to its warning threshold it broadcasts a
//! charging request carrying its id, the time, and its energy deficit. The
//! charger's policy consumes this queue; the attacker uses it both as a target
//! list and as camouflage (it answers requests just like the real charger).

use serde::{Deserialize, Serialize};

use wrsn_net::NodeId;

/// A pending charging request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargeRequest {
    /// The requesting node.
    pub node: NodeId,
    /// Simulation time the request was issued, seconds.
    pub issued_at_s: f64,
    /// Energy needed to refill the node, joules, at issue time.
    pub deficit_j: f64,
    /// The node's residual energy at issue time, joules.
    pub residual_j: f64,
}

/// FIFO queue of outstanding requests with one-request-per-node semantics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RequestQueue {
    pending: Vec<ChargeRequest>,
}

impl RequestQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        RequestQueue::default()
    }

    /// Outstanding requests in issue order.
    pub fn pending(&self) -> &[ChargeRequest] {
        &self.pending
    }

    /// Whether `node` has an outstanding request.
    pub fn contains(&self, node: NodeId) -> bool {
        self.pending.iter().any(|r| r.node == node)
    }

    /// Issues a request unless the node already has one outstanding. Returns
    /// whether the request was enqueued.
    pub fn issue(&mut self, request: ChargeRequest) -> bool {
        if self.contains(request.node) {
            return false;
        }
        self.pending.push(request);
        true
    }

    /// Removes the request of `node` (e.g. after it was served or died).
    /// Returns the removed request if there was one.
    pub fn withdraw(&mut self, node: NodeId) -> Option<ChargeRequest> {
        let idx = self.pending.iter().position(|r| r.node == node)?;
        Some(self.pending.remove(idx))
    }

    /// Number of outstanding requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether there are no outstanding requests.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(node: usize, t: f64) -> ChargeRequest {
        ChargeRequest {
            node: NodeId(node),
            issued_at_s: t,
            deficit_j: 100.0,
            residual_j: 20.0,
        }
    }

    #[test]
    fn issue_is_fifo_and_deduplicated() {
        let mut q = RequestQueue::new();
        assert!(q.issue(req(1, 0.0)));
        assert!(q.issue(req(2, 1.0)));
        assert!(!q.issue(req(1, 2.0)), "duplicate must be rejected");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pending()[0].node, NodeId(1));
        assert_eq!(q.pending()[1].node, NodeId(2));
    }

    #[test]
    fn withdraw_removes_only_target() {
        let mut q = RequestQueue::new();
        q.issue(req(1, 0.0));
        q.issue(req(2, 1.0));
        let w = q.withdraw(NodeId(1)).unwrap();
        assert_eq!(w.node, NodeId(1));
        assert!(!q.contains(NodeId(1)));
        assert!(q.contains(NodeId(2)));
        assert!(q.withdraw(NodeId(1)).is_none());
    }

    #[test]
    fn empty_queue_reports_empty() {
        let q = RequestQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert!(!q.contains(NodeId(0)));
    }
}
