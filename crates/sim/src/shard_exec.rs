//! The fused integration-segment kernel and its shard executors.
//!
//! This is the one module in the crate that uses `unsafe`: the parallel
//! shard executor runs [`apply_segment`] on several worker threads over the
//! *same* battery columns (a shared [`EnergyCells`] view), relying on the
//! engine invariant that spatial shards partition the node id space — no two
//! shards ever touch the same node, so every per-index cell op is data-race
//! free. The safe wrappers below ([`apply_sequential`],
//! [`apply_shards_parallel`]) are the only entry points; they uphold the
//! disjointness contract structurally and everything outside this module
//! stays unsafe-free.
//!
//! Bitwise discipline: the kernel body is the same for the unsharded,
//! sequential-sharded and parallel-sharded paths (one function), cell ops
//! are bitwise-identical to the [`wrsn_net::EnergyColumnsMut`] column ops,
//! and the merge in `World::advance` re-establishes ascending index order —
//! so the trajectory is byte-identical at any `threads × shards`
//! combination. The `shard_determinism` proptests pin this.

#![allow(unsafe_code)]

use wrsn_net::{EnergyCells, EnergyColumnsMut, NodeId};

use crate::parallel::{self, WorkerError};
use crate::world::DEATH_EPS;

/// Per-segment inputs shared by every shard: the current power/drain columns
/// and the injection applied over the segment.
pub(crate) struct SegmentCtx<'a> {
    /// Gross per-node power draw, watts (for saturation bookkeeping).
    pub power_w: &'a [f64],
    /// Net battery drain per node, watts (negative = charging).
    pub net_w: &'a [f64],
    /// The node receiving wireless charge, if any.
    pub inject_node: Option<NodeId>,
    /// Effective injected power, watts (after fault degradation).
    pub eff_w: f64,
    /// Segment length, seconds.
    pub step: f64,
}

/// One shard's private accumulators for a parallel segment: deaths, warning
/// crossings, the shard-local event horizon and the energy stored in the
/// inject node's battery (nonzero only for the shard owning it).
#[derive(Debug, Clone)]
pub(crate) struct ShardSlot {
    pub dead: Vec<NodeId>,
    pub crossed: Vec<usize>,
    pub t_next: f64,
    pub stored: f64,
}

impl Default for ShardSlot {
    fn default() -> Self {
        ShardSlot {
            dead: Vec::new(),
            crossed: Vec::new(),
            t_next: f64::INFINITY,
            stored: 0.0,
        }
    }
}

/// Applies one integration segment to the nodes listed in `members`: drains
/// (or charges, for the injected node) each battery over `step` seconds,
/// detects deaths and warning-threshold crossings, folds the next event
/// horizon into `t_next`, and returns the energy stored in `inject_node`'s
/// battery. The unsharded path passes `alive_idx` with no mask; shards pass
/// their (static) member lists with the live mask, which filters to exactly
/// the same node set. Per-node updates touch only that node's column entries,
/// so any partition of the members applies bitwise-identical updates.
///
/// # Safety
///
/// Concurrent calls sharing `cells` must have disjoint `members` — the
/// spatial shard map partitions node ids, which is how the wrappers below
/// uphold this.
#[allow(clippy::too_many_arguments)] // the fused loop's full working set
unsafe fn apply_segment(
    members: &[usize],
    alive: Option<&[bool]>,
    cells: &EnergyCells<'_>,
    ctx: &SegmentCtx<'_>,
    t_next: &mut f64,
    dead: &mut Vec<NodeId>,
    crossed: &mut Vec<usize>,
) -> f64 {
    let mut stored = 0.0;
    for &i in members {
        if let Some(alive) = alive {
            if !alive[i] {
                continue;
            }
        }
        let w = ctx.net_w[i];
        let nid = NodeId(i);
        if w == 0.0 && ctx.inject_node != Some(nid) {
            // Zero drain, no injection: the battery cannot move.
            continue;
        }
        let was_low = cells.needs_charging(i);
        if w > 0.0 {
            cells.discharge(i, w * ctx.step);
            // Snap float residue: if the remaining charge lasts under a
            // nanosecond at this drain, the node is dead now.
            if cells.level(i) <= w * DEATH_EPS {
                cells.set_level(i, 0.0);
            }
            if cells.depleted(i) {
                // `members` ascends, so deaths come out sorted. Dead nodes
                // get a full request scan during the topology refresh, so
                // none is queued here.
                dead.push(nid);
            } else {
                let level = cells.level(i);
                let warning = cells.warning(i);
                *t_next = t_next.min(level / w);
                if level > warning {
                    *t_next = t_next.min((level - warning) / w);
                }
                if cells.needs_charging(i) != was_low {
                    crossed.push(i);
                }
            }
            if ctx.inject_node == Some(nid) {
                // Net drain positive means no saturation: the battery
                // absorbed the full injected inflow.
                stored += ctx.eff_w * ctx.step;
            }
        } else {
            let gained = cells.charge(i, -w * ctx.step);
            if cells.needs_charging(i) != was_low {
                crossed.push(i);
            }
            if ctx.inject_node == Some(nid) {
                // Saturated batteries absorb less than injected.
                stored += gained + ctx.power_w[i] * ctx.step;
            }
        }
    }
    stored
}

/// [`apply_segment`] on the calling thread. Safe: a single caller holding the
/// exclusive column borrow trivially satisfies the disjointness contract.
pub(crate) fn apply_sequential(
    cols: &mut EnergyColumnsMut<'_>,
    members: &[usize],
    alive: Option<&[bool]>,
    ctx: &SegmentCtx<'_>,
    t_next: &mut f64,
    dead: &mut Vec<NodeId>,
    crossed: &mut Vec<usize>,
) -> f64 {
    let cells = cols.as_cells();
    // Safety: one thread, one call — no concurrent access to any index.
    unsafe { apply_segment(members, alive, &cells, ctx, t_next, dead, crossed) }
}

/// Fans [`apply_segment`] over the shards on up to `workers` scoped threads,
/// one private [`ShardSlot`] per shard. Safe: `shards` is the engine's
/// spatial shard map, whose shards partition the node id space, so every
/// worker touches a disjoint set of column indices.
///
/// A panic in a shard worker is caught at the shard boundary
/// ([`parallel::scatter`]) and returned as the lowest-index [`WorkerError`];
/// the columns may then hold a partially applied segment, so the caller must
/// abandon the run. Workers inherit the spawning thread's cancellation token
/// but do not poll it — `World::advance` polls once per segment on the
/// coordinating thread, which bounds cancellation latency to one segment
/// exactly as in sequential execution.
pub(crate) fn apply_shards_parallel(
    cols: &mut EnergyColumnsMut<'_>,
    shards: &[Vec<usize>],
    alive: &[bool],
    workers: usize,
    ctx: &SegmentCtx<'_>,
    slots: &mut [ShardSlot],
) -> Result<(), WorkerError> {
    debug_assert_eq!(shards.len(), slots.len());
    let cells = cols.as_cells();
    let cells = &cells;
    parallel::scatter(workers, slots, |k, slot| {
        if parallel::forced_shard_panic() == Some(k) {
            panic!("forced shard panic in shard {k}");
        }
        slot.dead.clear();
        slot.crossed.clear();
        slot.t_next = f64::INFINITY;
        // Safety: shard `k`'s members are disjoint from every other shard's
        // (the shard map partitions 0..n), and each slot is visited once.
        slot.stored = unsafe {
            apply_segment(
                &shards[k],
                Some(alive),
                cells,
                ctx,
                &mut slot.t_next,
                &mut slot.dead,
                &mut slot.crossed,
            )
        };
    })
}
