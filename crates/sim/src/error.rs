//! Error types for the simulation engine.
//!
//! The engine used to `expect`/panic on impossible-by-construction states
//! (stale node ids on the hot path, most prominently). Under fault injection
//! and checkpoint restore those states stop being impossible — a fault plan
//! or a hand-edited snapshot can reference nodes that are gone — so the run
//! loop now propagates a typed [`SimError`] instead of aborting the process.

use std::error::Error;
use std::fmt;

use wrsn_net::{NetError, NodeId};

use crate::store::StoreError;

/// Errors produced by the simulation run loop.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A network-level error (unknown node, disconnected graph, …) surfaced
    /// while the world was advancing.
    Net(NetError),
    /// A fault event referenced a node outside the network.
    FaultTarget(NodeId),
    /// A non-finite or negative duration reached the integrator.
    InvalidDuration {
        /// What requested the advance (action or API name).
        what: &'static str,
        /// The offending value, seconds.
        value: f64,
    },
    /// The run was cancelled through the thread's [`crate::cancel`] token —
    /// typically the watchdog in [`crate::parallel`] firing a wall-clock
    /// deadline on a hung experiment.
    Cancelled,
    /// An attached [`crate::store::Checkpointer`] could not persist the
    /// world.
    Store(StoreError),
    /// A worker thread of the parallel shard executor panicked. The panic is
    /// caught at the shard boundary ([`crate::parallel::scatter`]) and
    /// surfaced as a typed error, so a poisoned segment kills its run — the
    /// world may hold a partially applied segment — but never the process or
    /// sibling campaign experiments.
    ShardPanic {
        /// Index of the shard whose worker panicked.
        shard: usize,
        /// The panic payload, stringified.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Net(e) => write!(f, "network error during simulation: {e}"),
            SimError::FaultTarget(id) => {
                write!(f, "fault event targets unknown node {id}")
            }
            SimError::InvalidDuration { what, value } => {
                write!(f, "{what}: invalid duration {value} s")
            }
            SimError::Cancelled => {
                write!(f, "run cancelled by its supervisor (deadline or shutdown)")
            }
            SimError::Store(e) => write!(f, "checkpoint store error: {e}"),
            SimError::ShardPanic { shard, message } => {
                write!(f, "shard {shard} worker panicked: {message}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Net(e) => Some(e),
            SimError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for SimError {
    fn from(e: NetError) -> Self {
        SimError::Net(e)
    }
}

impl From<StoreError> for SimError {
    fn from(e: StoreError) -> Self {
        SimError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = SimError::from(NetError::UnknownNode(NodeId(7)));
        assert!(e.to_string().contains("n7"));
        let e = SimError::FaultTarget(NodeId(3));
        assert!(e.to_string().contains("n3"));
        let e = SimError::InvalidDuration {
            what: "advance_by",
            value: f64::NAN,
        };
        assert!(e.to_string().contains("advance_by"));
    }

    #[test]
    fn net_errors_convert_and_chain() {
        let e: SimError = NetError::Disconnected.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn cancelled_and_store_errors_display_and_chain() {
        assert!(SimError::Cancelled.to_string().contains("cancelled"));
        let e: SimError = StoreError::ChecksumMismatch {
            path: std::path::PathBuf::from("x.ckpt"),
        }
        .into();
        assert!(e.to_string().contains("checksum"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
