//! A generic discrete-event queue.
//!
//! Events are ordered by time; events at exactly the same time pop in the
//! order they were scheduled (FIFO), which keeps simulations deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A time-ordered event queue.
///
/// # Example
///
/// ```
/// use wrsn_sim::engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    high_water: usize,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, with
        // FIFO (lowest seq) tie-breaking.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            high_water: 0,
        }
    }

    /// Schedules `event` at absolute time `time` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events. Lifetime statistics
    /// ([`EventQueue::scheduled_total`], [`EventQueue::high_water`]) are
    /// preserved.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Total events ever scheduled on this queue (an observability counter;
    /// popping does not decrease it).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }

    /// Largest number of events simultaneously pending over the queue's
    /// lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.schedule(t, t as i32);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "a");
        q.schedule(1.0, "b");
        q.schedule(1.0, "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(7.0, ());
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn lifetime_stats_track_scheduling() {
        let mut q = EventQueue::new();
        assert_eq!(q.scheduled_total(), 0);
        assert_eq!(q.high_water(), 0);
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        q.pop();
        q.schedule(3.0, ());
        // Three scheduled in total; at most two were pending at once.
        assert_eq!(q.scheduled_total(), 3);
        assert_eq!(q.high_water(), 2);
        q.clear();
        assert_eq!(q.scheduled_total(), 3, "clear keeps lifetime stats");
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }
}
