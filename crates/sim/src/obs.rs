//! Structured observability: typed counters, gauges, timing spans and a
//! versioned JSONL trace schema.
//!
//! Every layer of the stack — the world loop, the charge policies, the CSA
//! planner — reports what it did through the [`Recorder`] trait. The default
//! [`NullRecorder`] is a set of empty inline-able methods, so instrumented
//! code paths cost nothing when nobody is listening and simulation output
//! stays byte-identical to an uninstrumented build (pinned by the
//! `trace_identity` regression tests in `wrsn-bench`).
//!
//! A [`StatsRecorder`] accumulates counters and span wall-times and buffers
//! [`TraceRecord`]s; the `exp` runner's `--trace <path>` flag serializes the
//! buffered records as one JSON object per line (JSONL), each wrapped in an
//! envelope carrying [`SCHEMA_VERSION`] so future consumers can evolve the
//! schema without guessing.
//!
//! Wall-clock span timings never enter the JSONL stream — they go to the
//! `--json` report instead — so a trace is a pure function of the simulation
//! and stays byte-identical across `WRSN_THREADS` settings and host speeds.

use std::time::Instant;

use serde::{Deserialize, Serialize, Value};

use wrsn_net::metrics::HealthSnapshot;

use crate::trace::{ChargeSession, SimEvent, Trace};

/// Version of the JSONL trace envelope. Bump when a record's shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// A monotonically increasing count of something the system did.
///
/// The set is closed and typed (not stringly keyed) so recording is an array
/// index, misspellings are compile errors, and the JSONL name mapping lives in
/// exactly one place ([`Counter::name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Policy decisions the world loop requested.
    PolicyDecisions,
    /// Piecewise-linear integration segments executed by `World::advance`.
    AdvanceSegments,
    /// Routing/power recomputations after a topology change.
    TopologyRefreshes,
    /// Chunks a charging session was executed in (long visits are chunked so
    /// the session ends the instant the served node dies).
    SessionChunks,
    /// Charger moves started.
    Moves,
    /// Wait actions executed.
    Waits,
    /// Completed charging sessions served honestly.
    HonestSessions,
    /// Completed charging sessions served in spoofed mode.
    SpoofedSessions,
    /// Node deaths.
    NodeDeaths,
    /// Charging requests issued by nodes.
    RequestsIssued,
    /// Depot battery swaps.
    DepotSwaps,
    /// Times the charger hit an empty budget.
    ChargerExhaustions,
    /// Request-queue entries scanned by a policy while picking a target.
    RequestScans,
    /// Policy service slices truncated for preemption (e.g. NJNP time
    /// slicing).
    PolicySlices,
    /// Full tour (re)constructions by tour-based policies.
    TourRebuilds,
    /// Accepted 2-opt reversals inside `wrsn_charge::tour`.
    TourTwoOptMoves,
    /// Decoy honest charges performed by the attack to look busy.
    DecoyCharges,
    /// Spoofed squat chunks issued by the attack.
    SquatChunks,
    /// Full CSA planner invocations.
    PlannerRuns,
    /// Adaptive replans triggered by the attack policy.
    Replans,
    /// O(1) candidate-insertion cost probes in the incremental CSA planner.
    CandidateProbes,
    /// Candidate probes that fell into the slack-guard band and ran the exact
    /// suffix-feasibility check.
    ExactFallbacks,
    /// Visits inserted into a CSA route.
    Insertions,
    /// Accepted 2-opt moves during CSA route improvement.
    TwoOptMoves,
    /// 2-opt improvement passes over a CSA route.
    TwoOptPasses,
    /// Incremental routing repairs after node deaths (vs. full rebuilds).
    RoutingRepairs,
    /// Nodes re-relaxed (settled) by incremental routing repairs — the
    /// incremental analogue of a full Dijkstra's n settled pops.
    RoutingRepairRelaxed,
    /// Routing refreshes that fell back to a full shortest-path rebuild
    /// because the invalidated subtree covered most of the alive network.
    RoutingFullBuilds,
    /// Power-draw entries left untouched by an incremental refresh because
    /// their routing state and traffic load were bitwise unchanged.
    PowerRecomputesSkipped,
    /// Per-node charge-request scans skipped by drain dirty-tracking (nodes
    /// whose battery level could not have changed during the segment).
    RequestScansSkipped,
    /// Fault events injected (all kinds).
    FaultsInjected,
    /// Injected node hard-failures (crash/dropout).
    FaultNodeFailures,
    /// Injected charging-efficiency degradations.
    FaultDegradations,
    /// Injected charger travel stalls.
    FaultChargerStalls,
    /// Injected charging-request losses.
    FaultRequestsLost,
    /// World checkpoints persisted to disk by an attached
    /// [`crate::store::Checkpointer`].
    CheckpointsWritten,
    /// Completed experiments restored from a durable run manifest instead of
    /// re-executed (`exp --resume`).
    Resumes,
    /// Work items cancelled by the watchdog at their wall-clock deadline.
    Timeouts,
    /// Service requests rejected at admission because the scheduler queue
    /// was full (answered with a typed `overloaded` response).
    RequestsShed,
    /// Result-cache entries evicted to stay under the configured byte cap.
    CacheEvictions,
    /// Streaming progress frames emitted by the service.
    StreamFrames,
    /// Streamed computations cancelled because the client went away
    /// mid-stream.
    StreamCancels,
    /// Idle service connections reaped by the read-timeout sweep.
    ConnsReaped,
    /// Request lines rejected for exceeding the service line-length cap.
    RequestsOversized,
    /// Completed charging sessions served in partial-power (detuned spoof)
    /// mode.
    PartialSessions,
    /// Challenge-response residual-energy probes issued by the online audit.
    AuditProbes,
    /// Audit probes whose measured gain fell below the conviction tolerance.
    AuditProbeFailures,
    /// Nodes convicted by the online audit (k-of-m probe failures).
    AuditConvictions,
}

impl Counter {
    /// Number of counters (size for dense per-counter arrays).
    pub const COUNT: usize = 48;

    /// All counters, in declaration (= serialization) order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::PolicyDecisions,
        Counter::AdvanceSegments,
        Counter::TopologyRefreshes,
        Counter::SessionChunks,
        Counter::Moves,
        Counter::Waits,
        Counter::HonestSessions,
        Counter::SpoofedSessions,
        Counter::NodeDeaths,
        Counter::RequestsIssued,
        Counter::DepotSwaps,
        Counter::ChargerExhaustions,
        Counter::RequestScans,
        Counter::PolicySlices,
        Counter::TourRebuilds,
        Counter::TourTwoOptMoves,
        Counter::DecoyCharges,
        Counter::SquatChunks,
        Counter::PlannerRuns,
        Counter::Replans,
        Counter::CandidateProbes,
        Counter::ExactFallbacks,
        Counter::Insertions,
        Counter::TwoOptMoves,
        Counter::TwoOptPasses,
        Counter::RoutingRepairs,
        Counter::RoutingRepairRelaxed,
        Counter::RoutingFullBuilds,
        Counter::PowerRecomputesSkipped,
        Counter::RequestScansSkipped,
        Counter::FaultsInjected,
        Counter::FaultNodeFailures,
        Counter::FaultDegradations,
        Counter::FaultChargerStalls,
        Counter::FaultRequestsLost,
        Counter::CheckpointsWritten,
        Counter::Resumes,
        Counter::Timeouts,
        Counter::RequestsShed,
        Counter::CacheEvictions,
        Counter::StreamFrames,
        Counter::StreamCancels,
        Counter::ConnsReaped,
        Counter::RequestsOversized,
        Counter::PartialSessions,
        Counter::AuditProbes,
        Counter::AuditProbeFailures,
        Counter::AuditConvictions,
    ];

    /// Stable snake_case name used in JSONL records and reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::PolicyDecisions => "policy_decisions",
            Counter::AdvanceSegments => "advance_segments",
            Counter::TopologyRefreshes => "topology_refreshes",
            Counter::SessionChunks => "session_chunks",
            Counter::Moves => "moves",
            Counter::Waits => "waits",
            Counter::HonestSessions => "honest_sessions",
            Counter::SpoofedSessions => "spoofed_sessions",
            Counter::NodeDeaths => "node_deaths",
            Counter::RequestsIssued => "requests_issued",
            Counter::DepotSwaps => "depot_swaps",
            Counter::ChargerExhaustions => "charger_exhaustions",
            Counter::RequestScans => "request_scans",
            Counter::PolicySlices => "policy_slices",
            Counter::TourRebuilds => "tour_rebuilds",
            Counter::TourTwoOptMoves => "tour_two_opt_moves",
            Counter::DecoyCharges => "decoy_charges",
            Counter::SquatChunks => "squat_chunks",
            Counter::PlannerRuns => "planner_runs",
            Counter::Replans => "replans",
            Counter::CandidateProbes => "candidate_probes",
            Counter::ExactFallbacks => "exact_fallbacks",
            Counter::Insertions => "insertions",
            Counter::TwoOptMoves => "two_opt_moves",
            Counter::TwoOptPasses => "two_opt_passes",
            Counter::RoutingRepairs => "routing_repairs",
            Counter::RoutingRepairRelaxed => "routing_repair_relaxed",
            Counter::RoutingFullBuilds => "routing_full_builds",
            Counter::PowerRecomputesSkipped => "power_recomputes_skipped",
            Counter::RequestScansSkipped => "request_scans_skipped",
            Counter::FaultsInjected => "faults_injected",
            Counter::FaultNodeFailures => "fault_node_failures",
            Counter::FaultDegradations => "fault_degradations",
            Counter::FaultChargerStalls => "fault_charger_stalls",
            Counter::FaultRequestsLost => "fault_requests_lost",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::Resumes => "resumes",
            Counter::Timeouts => "timeouts",
            Counter::RequestsShed => "requests_shed",
            Counter::CacheEvictions => "cache_evictions",
            Counter::StreamFrames => "stream_frames",
            Counter::StreamCancels => "stream_cancels",
            Counter::ConnsReaped => "conns_reaped",
            Counter::RequestsOversized => "requests_oversized",
            Counter::PartialSessions => "partial_sessions",
            Counter::AuditProbes => "audit_probes",
            Counter::AuditProbeFailures => "audit_probe_failures",
            Counter::AuditConvictions => "audit_convictions",
        }
    }
}

/// A sampled instantaneous value (last write wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Simulation clock, seconds.
    SimTimeS,
    /// Charger's remaining energy budget, joules.
    ChargerEnergyJ,
    /// Alive nodes.
    AliveNodes,
    /// Outstanding charging requests.
    PendingRequests,
}

impl Gauge {
    /// Number of gauges.
    pub const COUNT: usize = 4;

    /// All gauges, in declaration order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::SimTimeS,
        Gauge::ChargerEnergyJ,
        Gauge::AliveNodes,
        Gauge::PendingRequests,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::SimTimeS => "sim_time_s",
            Gauge::ChargerEnergyJ => "charger_energy_j",
            Gauge::AliveNodes => "alive_nodes",
            Gauge::PendingRequests => "pending_requests",
        }
    }
}

/// One record of the JSONL trace stream.
///
/// Serialized inside an envelope `{"v": SCHEMA_VERSION, "record": ...}` by
/// [`to_jsonl_line`]; [`from_jsonl_line`] rejects unknown versions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// Stream header: what produced this scope's records.
    Meta {
        /// Schema family, currently always `"wrsn-trace"`.
        schema: String,
        /// Producer scope (experiment id or run label).
        scope: String,
    },
    /// A timestamped simulation event.
    Event {
        /// Event time, seconds.
        t_s: f64,
        /// The event.
        event: SimEvent,
    },
    /// A completed (merged) charging session.
    Session {
        /// The session record.
        session: ChargeSession,
    },
    /// A network health snapshot.
    Snapshot {
        /// Snapshot time, seconds.
        t_s: f64,
        /// The snapshot.
        health: HealthSnapshot,
    },
    /// An injected fault (see [`crate::fault`]). Only present in traces of
    /// runs with a non-empty fault plan, so fault-free streams keep the exact
    /// pre-fault byte shape.
    Fault {
        /// Injection time, seconds.
        t_s: f64,
        /// What was injected.
        fault: crate::fault::FaultKind,
    },
    /// Aggregated counters for a scope, emitted after its last event.
    Counters {
        /// Producer scope (experiment id or run label).
        scope: String,
        /// `(counter_name, value)` pairs, nonzero only, declaration order.
        counters: Vec<(String, u64)>,
    },
}

/// Serializes a record as one JSONL line (no trailing newline) wrapped in the
/// versioned envelope.
///
/// # Errors
///
/// Fails if the record contains a non-finite float (JSON cannot carry those).
pub fn to_jsonl_line(record: &TraceRecord) -> Result<String, serde::Error> {
    let envelope = Value::Map(vec![
        ("v".to_string(), Value::U64(SCHEMA_VERSION)),
        ("record".to_string(), record.to_value()),
    ]);
    serde_json::to_string(&envelope)
}

/// Parses one JSONL line produced by [`to_jsonl_line`].
///
/// # Errors
///
/// Fails on malformed JSON, a missing/unsupported `v` field, or a record tree
/// that does not match [`TraceRecord`].
pub fn from_jsonl_line(line: &str) -> Result<TraceRecord, serde::Error> {
    let envelope: Value = serde_json::from_str(line)?;
    let Value::Map(entries) = &envelope else {
        return Err(serde::Error("trace line is not a JSON object".to_string()));
    };
    let version = u64::from_value(serde::map_get(entries, "v")?)?;
    if version != SCHEMA_VERSION {
        return Err(serde::Error(format!(
            "unsupported trace schema version {version} (supported: {SCHEMA_VERSION})"
        )));
    }
    TraceRecord::from_value(serde::map_get(entries, "record")?)
}

/// The observability sink instrumented code reports into.
///
/// All methods default to no-ops so simple recorders only override what they
/// need; [`Recorder::enabled`] lets hot paths skip building records entirely
/// when nobody is listening.
pub trait Recorder {
    /// Whether this recorder retains anything. Instrumented code may use this
    /// to skip constructing records/snapshots that would be thrown away.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to `counter`.
    fn add(&mut self, counter: Counter, delta: u64) {
        let _ = (counter, delta);
    }

    /// Samples `gauge` at `value` (last write wins).
    fn gauge(&mut self, gauge: Gauge, value: f64) {
        let _ = (gauge, value);
    }

    /// Enters a named timing span. Spans nest: a span entered while another is
    /// open is keyed by its dotted path (`"outer.inner"`).
    fn span_enter(&mut self, name: &'static str) {
        let _ = name;
    }

    /// Exits the innermost open span (which must be `name`).
    fn span_exit(&mut self, name: &'static str) {
        let _ = name;
    }

    /// Appends a trace record to the stream.
    fn emit(&mut self, record: &TraceRecord) {
        let _ = record;
    }
}

/// The default recorder: discards everything and reports `enabled() == false`
/// so instrumented code can skip observation work entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
}

/// Wall-time statistics of one (dotted-path) span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Dotted span path (`"outer.inner"` for nested spans).
    pub path: String,
    /// Total wall time spent inside, seconds (inclusive of children).
    pub total_s: f64,
    /// Times the span was entered.
    pub count: u64,
}

/// An in-memory recorder: dense counter/gauge arrays, aggregated span
/// wall-times, and a buffered [`TraceRecord`] stream.
#[derive(Debug)]
pub struct StatsRecorder {
    counters: [u64; Counter::COUNT],
    gauges: [Option<f64>; Gauge::COUNT],
    spans: Vec<SpanStats>,
    /// Open span stack: `spans` index plus entry time.
    open: Vec<(usize, Instant)>,
    /// Interned `(parent, name) → spans index`, where `parent` is the
    /// enclosing span's `spans` index plus one (0 at the root). Spans fire
    /// hundreds of thousands of times per run, so the hot enter/exit pair
    /// must resolve its stats slot without rebuilding dotted path strings.
    span_ids: Vec<(usize, &'static str, usize)>,
    records: Vec<TraceRecord>,
}

// Hand-written: `Default` is not derivable once the counter array outgrows
// the standard library's 32-element array impls.
impl Default for StatsRecorder {
    fn default() -> Self {
        StatsRecorder {
            counters: [0; Counter::COUNT],
            gauges: [None; Gauge::COUNT],
            spans: Vec::new(),
            open: Vec::new(),
            span_ids: Vec::new(),
            records: Vec::new(),
        }
    }
}

impl StatsRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        StatsRecorder::default()
    }

    /// Current value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Last sampled value of `gauge`, if any.
    pub fn gauge_value(&self, gauge: Gauge) -> Option<f64> {
        self.gauges[gauge as usize]
    }

    /// `(name, value)` pairs for all *nonzero* counters, declaration order.
    pub fn counter_entries(&self) -> Vec<(String, u64)> {
        Counter::ALL
            .iter()
            .filter(|&&c| self.counters[c as usize] > 0)
            .map(|&c| (c.name().to_string(), self.counters[c as usize]))
            .collect()
    }

    /// Aggregated span statistics, first-entered order.
    pub fn spans(&self) -> &[SpanStats] {
        &self.spans
    }

    /// The buffered trace records, emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the recorder, returning the buffered trace records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Appends a [`TraceRecord::Counters`] record with this recorder's
    /// current nonzero counters under `scope`. Called once per scope after
    /// its last event so the counters line closes the scope's stream.
    pub fn emit_counters(&mut self, scope: &str) {
        let record = TraceRecord::Counters {
            scope: scope.to_string(),
            counters: self.counter_entries(),
        };
        self.records.push(record);
    }

    /// Replays this recorder's counters, gauges, and buffered records into
    /// `rec`, in deterministic (declaration/emission) order. Span wall-times
    /// are not transferable through the trait and are dropped — by design,
    /// since merged workers' wall-clock would differ across hosts anyway.
    ///
    /// Used to fold per-worker recorders from parallel fan-outs back into an
    /// experiment's recorder in index order, keeping the merged stream
    /// independent of the worker count.
    pub fn merge_into(self, rec: &mut dyn Recorder) {
        for counter in Counter::ALL {
            let v = self.counters[counter as usize];
            if v > 0 {
                rec.add(counter, v);
            }
        }
        for gauge in Gauge::ALL {
            if let Some(v) = self.gauges[gauge as usize] {
                rec.gauge(gauge, v);
            }
        }
        for record in self.records {
            rec.emit(&record);
        }
    }
}

impl Recorder for StatsRecorder {
    fn add(&mut self, counter: Counter, delta: u64) {
        self.counters[counter as usize] += delta;
    }

    fn gauge(&mut self, gauge: Gauge, value: f64) {
        self.gauges[gauge as usize] = Some(value);
    }

    fn span_enter(&mut self, name: &'static str) {
        let parent = self.open.last().map_or(0, |&(idx, _)| idx + 1);
        let idx = match self
            .span_ids
            .iter()
            .find(|&&(p, n, _)| p == parent && n == name)
        {
            Some(&(_, _, idx)) => idx,
            None => {
                // First time this (parent, name) pair is seen: build the
                // dotted path once and intern it.
                let path = match parent {
                    0 => name.to_string(),
                    p => format!("{}.{}", self.spans[p - 1].path, name),
                };
                let idx = match self.spans.iter().position(|s| s.path == path) {
                    Some(idx) => idx,
                    None => {
                        self.spans.push(SpanStats {
                            path,
                            total_s: 0.0,
                            count: 0,
                        });
                        self.spans.len() - 1
                    }
                };
                self.span_ids.push((parent, name, idx));
                idx
            }
        };
        self.open.push((idx, Instant::now()));
    }

    fn span_exit(&mut self, name: &'static str) {
        let Some((idx, started)) = self.open.pop() else {
            debug_assert!(false, "span_exit(\"{name}\") with no open span");
            return;
        };
        debug_assert!(
            self.spans[idx].path.ends_with(name),
            "span_exit(\"{name}\") out of order (innermost is \"{}\")",
            self.spans[idx].path
        );
        self.spans[idx].total_s += started.elapsed().as_secs_f64();
        self.spans[idx].count += 1;
    }

    fn emit(&mut self, record: &TraceRecord) {
        self.records.push(record.clone());
    }
}

/// Emits a world trace into `rec` — one [`TraceRecord::Event`] per event and
/// one [`TraceRecord::Session`] per (merged) session — and bumps the
/// trace-derived counters (deaths, requests, moves, session modes, swaps,
/// exhaustions). No-op when the recorder is disabled.
pub fn export_trace(rec: &mut dyn Recorder, trace: &Trace) {
    if !rec.enabled() {
        return;
    }
    for (t_s, event) in trace.events() {
        match event {
            SimEvent::NodeDied { .. } => rec.add(Counter::NodeDeaths, 1),
            SimEvent::RequestIssued { .. } => rec.add(Counter::RequestsIssued, 1),
            SimEvent::MoveStarted { .. } => rec.add(Counter::Moves, 1),
            SimEvent::DepotSwap => rec.add(Counter::DepotSwaps, 1),
            SimEvent::ChargerExhausted => rec.add(Counter::ChargerExhaustions, 1),
            SimEvent::Fault { fault } => {
                rec.add(Counter::FaultsInjected, 1);
                rec.add(
                    match fault {
                        crate::fault::FaultKind::NodeFailure { .. } => Counter::FaultNodeFailures,
                        crate::fault::FaultKind::Degradation { .. } => Counter::FaultDegradations,
                        crate::fault::FaultKind::ChargerStall { .. } => Counter::FaultChargerStalls,
                        crate::fault::FaultKind::RequestLoss { .. } => Counter::FaultRequestsLost,
                    },
                    1,
                );
                // Faults get a dedicated record kind (in addition to the
                // generic event below) so consumers can filter injections
                // without pattern-matching the whole event enum.
                rec.emit(&TraceRecord::Fault {
                    t_s: *t_s,
                    fault: *fault,
                });
            }
            _ => {}
        }
        rec.emit(&TraceRecord::Event {
            t_s: *t_s,
            event: event.clone(),
        });
    }
    for session in trace.sessions() {
        match session.mode {
            crate::charger::ChargeMode::Honest => rec.add(Counter::HonestSessions, 1),
            crate::charger::ChargeMode::Spoofed => rec.add(Counter::SpoofedSessions, 1),
            crate::charger::ChargeMode::Partial { .. } => rec.add(Counter::PartialSessions, 1),
        }
        rec.emit(&TraceRecord::Session { session: *session });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charger::ChargeMode;
    use wrsn_net::{NodeId, Point};

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let mut rec = NullRecorder;
        assert!(!rec.enabled());
        rec.add(Counter::Moves, 3);
        rec.gauge(Gauge::SimTimeS, 1.0);
        rec.span_enter("x");
        rec.span_exit("x");
        rec.emit(&TraceRecord::Meta {
            schema: "wrsn-trace".into(),
            scope: "t".into(),
        });
    }

    #[test]
    fn counters_accumulate_and_list_nonzero_in_order() {
        let mut rec = StatsRecorder::new();
        rec.add(Counter::TwoOptMoves, 2);
        rec.add(Counter::Moves, 1);
        rec.add(Counter::TwoOptMoves, 3);
        assert_eq!(rec.counter(Counter::TwoOptMoves), 5);
        assert_eq!(rec.counter(Counter::Waits), 0);
        let entries = rec.counter_entries();
        assert_eq!(
            entries,
            vec![("moves".to_string(), 1), ("two_opt_moves".to_string(), 5)]
        );
    }

    #[test]
    fn counter_all_and_names_are_consistent() {
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "ALL order must match discriminants");
        }
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT, "counter names must be unique");
    }

    #[test]
    fn gauges_keep_last_write() {
        let mut rec = StatsRecorder::new();
        assert_eq!(rec.gauge_value(Gauge::AliveNodes), None);
        rec.gauge(Gauge::AliveNodes, 10.0);
        rec.gauge(Gauge::AliveNodes, 7.0);
        assert_eq!(rec.gauge_value(Gauge::AliveNodes), Some(7.0));
    }

    #[test]
    fn spans_nest_by_dotted_path() {
        let mut rec = StatsRecorder::new();
        rec.span_enter("run");
        rec.span_enter("decide");
        rec.span_exit("decide");
        rec.span_enter("decide");
        rec.span_exit("decide");
        rec.span_exit("run");
        let paths: Vec<(&str, u64)> = rec
            .spans()
            .iter()
            .map(|s| (s.path.as_str(), s.count))
            .collect();
        assert_eq!(paths, vec![("run", 1), ("run.decide", 2)]);
        assert!(rec.spans().iter().all(|s| s.total_s >= 0.0));
    }

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::Meta {
                schema: "wrsn-trace".into(),
                scope: "unit".into(),
            },
            TraceRecord::Event {
                t_s: 12.5,
                event: SimEvent::RequestIssued { node: NodeId(3) },
            },
            TraceRecord::Event {
                t_s: 99.0,
                event: SimEvent::MoveStarted {
                    dest: Point::new(1.0, -2.0),
                },
            },
            TraceRecord::Session {
                session: ChargeSession {
                    node: NodeId(1),
                    start_s: 10.0,
                    duration_s: 5.5,
                    delivered_j: 0.25,
                    radiated_j: 16.5,
                    mode: ChargeMode::Spoofed,
                    charger_pos: Point::new(3.0, 4.0),
                },
            },
            TraceRecord::Fault {
                t_s: 77.0,
                fault: crate::fault::FaultKind::Degradation {
                    node: NodeId(5),
                    factor: 0.5,
                },
            },
            TraceRecord::Counters {
                scope: "unit".into(),
                counters: vec![("moves".into(), 4), ("candidate_probes".into(), 123)],
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_record_kind() {
        for record in sample_records() {
            let line = to_jsonl_line(&record).unwrap();
            assert!(line.starts_with("{\"v\":1,"), "envelope first: {line}");
            assert!(!line.contains('\n'));
            let back = from_jsonl_line(&line).unwrap();
            assert_eq!(back, record);
            // Re-serializing the parsed record reproduces the exact line.
            assert_eq!(to_jsonl_line(&back).unwrap(), line);
        }
    }

    #[test]
    fn unsupported_versions_are_rejected() {
        let record = &sample_records()[0];
        let line = to_jsonl_line(record).unwrap();
        let bumped = line.replacen("{\"v\":1,", "{\"v\":2,", 1);
        assert!(from_jsonl_line(&bumped).is_err());
        assert!(from_jsonl_line("{\"record\":{}}").is_err());
        assert!(from_jsonl_line("[]").is_err());
        assert!(from_jsonl_line("not json").is_err());
    }

    #[test]
    fn merge_into_replays_counters_gauges_and_records() {
        let mut worker = StatsRecorder::new();
        worker.add(Counter::Moves, 2);
        worker.add(Counter::CandidateProbes, 7);
        worker.gauge(Gauge::SimTimeS, 42.0);
        worker.emit(&TraceRecord::Meta {
            schema: "wrsn-trace".into(),
            scope: "w".into(),
        });
        worker.span_enter("lost");
        worker.span_exit("lost");
        let mut parent = StatsRecorder::new();
        parent.add(Counter::Moves, 1);
        worker.merge_into(&mut parent);
        assert_eq!(parent.counter(Counter::Moves), 3);
        assert_eq!(parent.counter(Counter::CandidateProbes), 7);
        assert_eq!(parent.gauge_value(Gauge::SimTimeS), Some(42.0));
        assert_eq!(parent.records().len(), 1);
        assert!(parent.spans().is_empty(), "span wall-times are dropped");
    }

    #[test]
    fn emit_counters_closes_a_scope() {
        let mut rec = StatsRecorder::new();
        rec.add(Counter::Waits, 4);
        rec.emit_counters("fig0");
        assert_eq!(
            rec.records().last(),
            Some(&TraceRecord::Counters {
                scope: "fig0".into(),
                counters: vec![("waits".into(), 4)],
            })
        );
    }

    #[test]
    fn export_trace_emits_events_sessions_and_counters() {
        let mut trace = Trace::new();
        trace.record(1.0, SimEvent::RequestIssued { node: NodeId(0) });
        trace.record(2.0, SimEvent::NodeDied { node: NodeId(2) });
        trace.record_session(ChargeSession {
            node: NodeId(0),
            start_s: 3.0,
            duration_s: 4.0,
            delivered_j: 1.0,
            radiated_j: 2.0,
            mode: ChargeMode::Honest,
            charger_pos: Point::ORIGIN,
        });
        let mut rec = StatsRecorder::new();
        export_trace(&mut rec, &trace);
        assert_eq!(rec.counter(Counter::RequestsIssued), 1);
        assert_eq!(rec.counter(Counter::NodeDeaths), 1);
        assert_eq!(rec.counter(Counter::HonestSessions), 1);
        // 3 events (incl. SessionEnded) + 1 session record.
        assert_eq!(rec.records().len(), 4);
        let mut null = NullRecorder;
        export_trace(&mut null, &trace); // must be a no-op, not a panic
    }

    #[test]
    fn export_trace_maps_faults_to_counters_and_records() {
        use crate::fault::FaultKind;
        let mut trace = Trace::new();
        trace.record(
            1.0,
            SimEvent::Fault {
                fault: FaultKind::NodeFailure { node: NodeId(2) },
            },
        );
        trace.record(
            2.0,
            SimEvent::Fault {
                fault: FaultKind::ChargerStall { delay_s: 30.0 },
            },
        );
        let mut rec = StatsRecorder::new();
        export_trace(&mut rec, &trace);
        assert_eq!(rec.counter(Counter::FaultsInjected), 2);
        assert_eq!(rec.counter(Counter::FaultNodeFailures), 1);
        assert_eq!(rec.counter(Counter::FaultChargerStalls), 1);
        assert_eq!(rec.counter(Counter::FaultDegradations), 0);
        // Each fault yields a Fault record plus the generic Event record.
        let fault_records = rec
            .records()
            .iter()
            .filter(|r| matches!(r, TraceRecord::Fault { .. }))
            .count();
        assert_eq!(fault_records, 2);
        assert_eq!(rec.records().len(), 4);
    }
}
