//! Cooperative cancellation for supervised runs.
//!
//! A [`CancelToken`] is a shared atomic flag. The watchdog in
//! [`crate::parallel`] cancels a work item's token when it blows its
//! wall-clock deadline; [`crate::World::advance_by`] and the run loop poll the
//! thread's *current* token between integration segments and return
//! [`crate::SimError::Cancelled`], so a hung experiment unwinds at the next
//! segment boundary instead of blocking the whole campaign forever.
//!
//! The current token is thread-local, installed with a [`ScopedCancel`] RAII
//! guard. [`crate::parallel`] propagates the spawning thread's token into its
//! workers, so nested fan-outs (an experiment that itself calls
//! [`crate::parallel::map_indexed`] for its inner trials) inherit their
//! ancestor's deadline.
//!
//! Installed tokens live on a per-thread *stack keyed by a unique guard id*,
//! not a saved-previous-value swap. The distinction matters on pooled threads
//! that outlive a request: with a plain swap, guards dropped out of LIFO
//! order (a panic payload carrying a guard across a
//! [`std::panic::catch_unwind`] boundary, a guard stored in a struct that
//! outlives its scope) would restore a *stale* token over a newer one, and a
//! long-lived worker thread would then cancel an unrelated later request.
//! With the id-keyed stack a guard can only ever remove its own entry, so
//! restoration is exact no matter how the unwind interleaves drops — pinned
//! by the out-of-order and panic tests below and by the daemon-level
//! worker-reuse tests in `wrsn-bench`.
//!
//! Cancellation is *cooperative*: code that never reaches a poll point (a
//! tight loop outside the simulation engine, blocking I/O) cannot be
//! interrupted. The simulation hot loop polls once per piecewise-linear
//! segment, which bounds the reaction latency to one segment of work.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Cloning yields another handle to the *same*
/// flag; once cancelled, a token stays cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; visible to every clone of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

thread_local! {
    /// The thread's stack of installed tokens, innermost last. Entries carry
    /// the unique id of the [`ScopedCancel`] guard that pushed them, so a
    /// drop removes exactly its own entry even when drops run out of order.
    static STACK: RefCell<Vec<(u64, CancelToken)>> = const { RefCell::new(Vec::new()) };
}

/// Process-wide guard id source (never reused, so an id identifies one
/// install across every thread).
static NEXT_GUARD_ID: AtomicU64 = AtomicU64::new(1);

/// The token currently installed on this thread (the innermost live
/// [`ScopedCancel`]), if any.
pub fn current() -> Option<CancelToken> {
    STACK.with(|stack| stack.borrow().last().map(|(_, token)| token.clone()))
}

/// Whether this thread's current token (if any) has been cancelled. With no
/// token installed this is always `false`.
pub fn cancelled() -> bool {
    STACK.with(|stack| {
        stack
            .borrow()
            .last()
            .is_some_and(|(_, token)| token.is_cancelled())
    })
}

/// RAII guard that installs a token as this thread's current one and removes
/// it again on drop, so supervision scopes nest.
///
/// Removal is keyed by the guard's unique id: dropping a guard removes *its*
/// entry from the thread's token stack, wherever that entry sits. Guards
/// dropped in LIFO order behave like a classic save/restore; guards dropped
/// out of order (e.g. one smuggled through a panic payload across a
/// `catch_unwind` boundary) still cannot clobber a newer scope's token or
/// resurrect a stale one.
#[derive(Debug)]
pub struct ScopedCancel {
    id: u64,
}

impl ScopedCancel {
    /// Installs `token` as the thread's current token until the guard drops.
    pub fn install(token: CancelToken) -> Self {
        let id = NEXT_GUARD_ID.fetch_add(1, Ordering::Relaxed);
        STACK.with(|stack| stack.borrow_mut().push((id, token)));
        ScopedCancel { id }
    }
}

impl Drop for ScopedCancel {
    fn drop(&mut self) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|(id, _)| *id == self.id) {
                stack.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_share_their_flag_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn no_token_means_never_cancelled() {
        assert!(current().is_none());
        assert!(!cancelled());
    }

    #[test]
    fn scoped_install_nests_and_restores() {
        let outer = CancelToken::new();
        let guard = ScopedCancel::install(outer.clone());
        assert!(!cancelled());
        {
            let inner = CancelToken::new();
            inner.cancel();
            let _inner_guard = ScopedCancel::install(inner);
            assert!(cancelled(), "inner token is current and cancelled");
        }
        assert!(!cancelled(), "outer token restored on drop");
        outer.cancel();
        assert!(cancelled());
        drop(guard);
        assert!(current().is_none());
    }

    #[test]
    fn out_of_order_drop_cannot_clobber_a_newer_token() {
        // Guard A (cancelled token), then guard B (live token). Dropping A
        // *first* — out of LIFO order — must leave B's token current; the
        // old swap-based restore would have reinstated A's saved `None` and
        // then B's drop would have resurrected A's cancelled token.
        let stale = CancelToken::new();
        stale.cancel();
        let guard_a = ScopedCancel::install(stale);
        let live = CancelToken::new();
        let guard_b = ScopedCancel::install(live.clone());
        drop(guard_a);
        assert!(
            !cancelled(),
            "dropping an outer guard out of order must not disturb the inner token"
        );
        drop(guard_b);
        assert!(current().is_none(), "stack is empty after both drops");
    }

    #[test]
    fn panic_across_catch_unwind_leaves_no_stale_token() {
        // A worker that installs its own scope and panics: the unwind caught
        // by `catch_unwind` must drop the guard and leave this thread's
        // token state exactly as before — the pooled-thread reuse hazard.
        let outer = CancelToken::new();
        let _outer_guard = ScopedCancel::install(outer.clone());
        let result = std::panic::catch_unwind(|| {
            let poisoned = CancelToken::new();
            poisoned.cancel();
            let _guard = ScopedCancel::install(poisoned);
            panic!("worker died mid-request");
        });
        assert!(result.is_err());
        assert!(
            !cancelled(),
            "the panicked scope's cancelled token must not survive the unwind"
        );
        assert!(
            current().is_some(),
            "the enclosing scope's token is still installed"
        );
    }

    #[test]
    fn guard_smuggled_through_a_panic_payload_removes_only_its_entry() {
        // The pathological ordering: a guard escapes its scope inside the
        // panic payload, so it drops *after* the scopes that were entered
        // later have already been torn down and a fresh scope installed.
        let result = std::panic::catch_unwind(|| {
            let stale = CancelToken::new();
            stale.cancel();
            let guard = ScopedCancel::install(stale);
            std::panic::panic_any(guard);
        });
        let payload = result.expect_err("the closure panicked");
        // A new request's scope begins on the same (pooled) thread...
        let fresh = CancelToken::new();
        let _fresh_guard = ScopedCancel::install(fresh.clone());
        // ...and only now does the smuggled guard drop.
        drop(payload);
        assert!(
            !cancelled(),
            "late drop of the smuggled guard must not cancel the new request"
        );
        let now = current().expect("fresh token still installed");
        assert!(!now.is_cancelled());
    }
}
