//! Cooperative cancellation for supervised runs.
//!
//! A [`CancelToken`] is a shared atomic flag. The watchdog in
//! [`crate::parallel`] cancels a work item's token when it blows its
//! wall-clock deadline; [`crate::World::advance_by`] and the run loop poll the
//! thread's *current* token between integration segments and return
//! [`crate::SimError::Cancelled`], so a hung experiment unwinds at the next
//! segment boundary instead of blocking the whole campaign forever.
//!
//! The current token is thread-local, installed with a [`ScopedCancel`] RAII
//! guard. [`crate::parallel`] propagates the spawning thread's token into its
//! workers, so nested fan-outs (an experiment that itself calls
//! [`crate::parallel::map_indexed`] for its inner trials) inherit their
//! ancestor's deadline.
//!
//! Cancellation is *cooperative*: code that never reaches a poll point (a
//! tight loop outside the simulation engine, blocking I/O) cannot be
//! interrupted. The simulation hot loop polls once per piecewise-linear
//! segment, which bounds the reaction latency to one segment of work.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Cloning yields another handle to the *same*
/// flag; once cancelled, a token stays cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; visible to every clone of this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// The token currently installed on this thread, if any.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|cell| cell.borrow().clone())
}

/// Whether this thread's current token (if any) has been cancelled. With no
/// token installed this is always `false`.
pub fn cancelled() -> bool {
    CURRENT.with(|cell| {
        cell.borrow()
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
    })
}

/// RAII guard that installs a token as this thread's current one and restores
/// the previous token (if any) on drop, so supervision scopes nest.
#[derive(Debug)]
pub struct ScopedCancel {
    prev: Option<CancelToken>,
}

impl ScopedCancel {
    /// Installs `token` as the thread's current token until the guard drops.
    pub fn install(token: CancelToken) -> Self {
        let prev = CURRENT.with(|cell| cell.borrow_mut().replace(token));
        ScopedCancel { prev }
    }
}

impl Drop for ScopedCancel {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|cell| *cell.borrow_mut() = prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_share_their_flag_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn no_token_means_never_cancelled() {
        assert!(current().is_none());
        assert!(!cancelled());
    }

    #[test]
    fn scoped_install_nests_and_restores() {
        let outer = CancelToken::new();
        let guard = ScopedCancel::install(outer.clone());
        assert!(!cancelled());
        {
            let inner = CancelToken::new();
            inner.cancel();
            let _inner_guard = ScopedCancel::install(inner);
            assert!(cancelled(), "inner token is current and cancelled");
        }
        assert!(!cancelled(), "outer token restored on drop");
        outer.cancel();
        assert!(cancelled());
        drop(guard);
        assert!(current().is_none());
    }
}
