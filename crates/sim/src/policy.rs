//! The charger-policy interface.
//!
//! Every charger behaviour — benign schedulers in `wrsn-charge`, the Charging
//! Spoofing Attack in `wrsn-core` — implements [`ChargerPolicy`]: the world
//! repeatedly asks the policy for its next [`ChargerAction`] and executes it.

use wrsn_net::energy::RadioEnergyModel;
use wrsn_net::routing::RoutingTree;
use wrsn_net::{Network, NodeId, Point};

use crate::charger::{ChargeMode, MobileCharger};
use crate::obs::Recorder;
use crate::request::ChargeRequest;

/// One step of charger behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChargerAction {
    /// Drive to `dest` (the world clamps the move to the energy budget).
    MoveTo(Point),
    /// Park at the service point of `node` (moving there first if needed) and
    /// serve it for `duration_s` seconds in `mode`.
    Charge {
        /// The node to serve.
        node: NodeId,
        /// Service duration, seconds.
        duration_s: f64,
        /// Honest or spoofed service.
        mode: ChargeMode,
    },
    /// Drive to the depot and swap/refill the charger's own battery. A no-op
    /// (after the drive) if the world has no depot configured.
    Recharge,
    /// Do nothing for `duration_s` seconds.
    Wait(f64),
    /// The policy is done; the world free-runs the network to the horizon.
    Finish,
}

/// Read-only view of the world handed to a policy at each decision point.
#[derive(Debug)]
pub struct WorldView<'a> {
    /// Current simulation time, seconds.
    pub time_s: f64,
    /// The network (positions, batteries, topology).
    pub net: &'a Network,
    /// The current routing tree over alive nodes.
    pub tree: &'a RoutingTree,
    /// Steady-state power draw of every node, watts.
    pub power_w: &'a [f64],
    /// The charger's current state.
    pub charger: &'a MobileCharger,
    /// Outstanding charging requests, oldest first.
    pub requests: &'a [ChargeRequest],
    /// Simulation horizon, seconds.
    pub horizon_s: f64,
    /// The depot where [`ChargerAction::Recharge`] swaps batteries, if the
    /// world has one.
    pub depot: Option<Point>,
    /// The radio energy model behind `power_w`. Lets a policy that simulates
    /// drain with the same model recognise that `power_w` is reusable as-is
    /// instead of recomputing the draw from scratch.
    pub radio: RadioEnergyModel,
}

impl WorldView<'_> {
    /// Time remaining until the horizon, seconds.
    pub fn time_left_s(&self) -> f64 {
        (self.horizon_s - self.time_s).max(0.0)
    }

    /// Whether the charger should head to the depot: a depot exists and the
    /// remaining budget is below `reserve_fraction` of capacity.
    pub fn should_recharge(&self, reserve_fraction: f64) -> bool {
        self.depot.is_some()
            && self.charger.energy_j() < reserve_fraction * self.charger.capacity_j()
    }

    /// Whether `node` is still alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.net.node(node).map(|n| n.is_alive()).unwrap_or(false)
    }
}

/// A charger behaviour driven by the world loop.
///
/// Implementations should be deterministic for reproducible experiments; seed
/// any randomness explicitly.
pub trait ChargerPolicy {
    /// Decides the next action given the current world state.
    fn next_action(&mut self, view: &WorldView<'_>) -> ChargerAction;

    /// Like [`ChargerPolicy::next_action`], but with a [`Recorder`] the
    /// policy may report counters and spans into. The default ignores the
    /// recorder, so existing policies are unaffected; instrumented policies
    /// override this and have `next_action` delegate with a
    /// [`crate::obs::NullRecorder`]. The world loop always calls this
    /// variant.
    fn next_action_observed(
        &mut self,
        view: &WorldView<'_>,
        rec: &mut dyn Recorder,
    ) -> ChargerAction {
        let _ = rec;
        self.next_action(view)
    }

    /// A short human-readable name used in reports and experiment tables.
    fn name(&self) -> &str {
        "unnamed"
    }
}

/// A policy that does nothing: the charger stays parked and the network drains
/// naturally. Useful as the "no charger" baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdlePolicy;

impl ChargerPolicy for IdlePolicy {
    fn next_action(&mut self, _view: &WorldView<'_>) -> ChargerAction {
        ChargerAction::Finish
    }

    fn name(&self) -> &str {
        "idle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrsn_net::deploy;
    use wrsn_net::Region;

    #[test]
    fn idle_policy_finishes_immediately() {
        let nodes = deploy::uniform(&Region::square(10.0), 3, 0);
        let net = Network::build(nodes, Point::ORIGIN, 5.0);
        let tree = RoutingTree::shortest_path(&net, &net.alive_mask());
        let charger = MobileCharger::standard(Point::ORIGIN);
        let view = WorldView {
            time_s: 0.0,
            net: &net,
            tree: &tree,
            power_w: &[0.0; 3],
            charger: &charger,
            requests: &[],
            horizon_s: 100.0,
            depot: None,
            radio: RadioEnergyModel::classical(),
        };
        let mut p = IdlePolicy;
        assert_eq!(p.next_action(&view), ChargerAction::Finish);
        assert_eq!(p.name(), "idle");
    }

    #[test]
    fn view_helpers() {
        let nodes = deploy::uniform(&Region::square(10.0), 2, 0);
        let net = Network::build(nodes, Point::ORIGIN, 5.0);
        let tree = RoutingTree::shortest_path(&net, &net.alive_mask());
        let charger = MobileCharger::standard(Point::ORIGIN);
        let view = WorldView {
            time_s: 30.0,
            net: &net,
            tree: &tree,
            power_w: &[0.0; 2],
            charger: &charger,
            requests: &[],
            horizon_s: 100.0,
            depot: None,
            radio: RadioEnergyModel::classical(),
        };
        assert_eq!(view.time_left_s(), 70.0);
        assert!(view.is_alive(NodeId(0)));
        assert!(!view.is_alive(NodeId(99)));
    }
}
