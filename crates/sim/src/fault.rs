//! Deterministic fault injection: seeded fault plans and their runtime state.
//!
//! The paper's stealth claim is only meaningful if the attack's signature can
//! be told apart from ordinary operational noise — node crashes, degraded
//! harvesting circuits, a charger stuck in mud, lost request packets. This
//! module provides that noise *reproducibly*: a [`FaultPlan`] is derived from
//! a seed by a fixed RNG discipline, so two runs with the same seed inject
//! byte-identical fault sequences, and [`FaultPlan::none`] keeps a run
//! bit-for-bit identical to a world that never heard of faults.
//!
//! The plan is pure data (when/what); the [`FaultInjector`] carries the
//! runtime state the world mutates as events fire — the next-event cursor,
//! per-node charging-efficiency factors, the armed travel stall, and armed
//! request losses. Both halves serialize, so a [`crate::world::Checkpoint`]
//! captures fault state and a restored run replays the remaining events
//! exactly where the uninterrupted run would have.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use wrsn_net::NodeId;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node crashes: it drops out of the network immediately, keeping its
    /// residual battery charge (unlike exhaustion, which ends at zero).
    NodeFailure {
        /// The crashing node.
        node: NodeId,
    },
    /// The node's charging efficiency degrades: from now on it harvests only
    /// `factor` of the power a charger delivers to it. Repeated degradations
    /// compound multiplicatively.
    Degradation {
        /// The degraded node.
        node: NodeId,
        /// Multiplier in `(0, 1]` applied to delivered charging power.
        factor: f64,
    },
    /// The charger stalls: its next move takes `delay_s` extra seconds (the
    /// vehicle is stuck; the network keeps draining). Stalls accumulate.
    ChargerStall {
        /// Extra travel time, seconds.
        delay_s: f64,
    },
    /// The node's next charging request is lost in transit: the charger does
    /// not hear it until the node's battery state next changes and the
    /// request is re-issued.
    RequestLoss {
        /// The node whose request is dropped.
        node: NodeId,
    },
}

/// A fault scheduled at an absolute simulation instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Injection time, seconds.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// How many faults of each kind a generated plan contains, and the parameter
/// ranges they draw from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Node hard-failures (crash/dropout).
    pub node_failures: usize,
    /// Charging-efficiency degradations.
    pub degradations: usize,
    /// Charger travel stalls.
    pub charger_stalls: usize,
    /// Charging-request losses.
    pub request_losses: usize,
    /// Degradation factor range (fraction of delivered power kept).
    pub degradation_range: (f64, f64),
    /// Stall duration range, seconds.
    pub stall_range_s: (f64, f64),
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            node_failures: 0,
            degradations: 0,
            charger_stalls: 0,
            request_losses: 0,
            degradation_range: (0.3, 0.9),
            stall_range_s: (60.0, 600.0),
        }
    }
}

impl FaultConfig {
    /// A config with `intensity` faults of every kind — the one-knob sweep
    /// used by the `faults` experiment.
    pub fn uniform(intensity: usize) -> Self {
        FaultConfig {
            node_failures: intensity,
            degradations: intensity,
            charger_stalls: intensity,
            request_losses: intensity,
            ..FaultConfig::default()
        }
    }

    /// Total number of events this config generates.
    pub fn total(&self) -> usize {
        self.node_failures + self.degradations + self.charger_stalls + self.request_losses
    }
}

/// A reproducible schedule of fault events, sorted by injection time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    seed: u64,
    /// Events, ascending by time (ties keep generation order).
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: a world running under it is bit-identical to one with
    /// no fault machinery attached at all.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Generates a plan for a network of `node_count` nodes over
    /// `[0, horizon_s)`. Fully determined by `(seed, node_count, horizon_s,
    /// config)`: the RNG is ChaCha8 seeded with `seed`, and each fault kind
    /// draws its events in a fixed order, so the same inputs always produce
    /// the same plan.
    pub fn generate(seed: u64, node_count: usize, horizon_s: f64, config: &FaultConfig) -> Self {
        assert!(
            horizon_s.is_finite() && horizon_s > 0.0,
            "horizon must be positive, got {horizon_s}"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17);
        let mut events = Vec::with_capacity(config.total());
        if node_count > 0 {
            for _ in 0..config.node_failures {
                events.push(FaultEvent {
                    at_s: rng.gen_range(0.0..horizon_s),
                    kind: FaultKind::NodeFailure {
                        node: NodeId(rng.gen_range(0..node_count)),
                    },
                });
            }
            let (lo, hi) = config.degradation_range;
            for _ in 0..config.degradations {
                events.push(FaultEvent {
                    at_s: rng.gen_range(0.0..horizon_s),
                    kind: FaultKind::Degradation {
                        node: NodeId(rng.gen_range(0..node_count)),
                        factor: rng.gen_range(lo..hi),
                    },
                });
            }
            for _ in 0..config.request_losses {
                events.push(FaultEvent {
                    at_s: rng.gen_range(0.0..horizon_s),
                    kind: FaultKind::RequestLoss {
                        node: NodeId(rng.gen_range(0..node_count)),
                    },
                });
            }
        }
        let (lo, hi) = config.stall_range_s;
        for _ in 0..config.charger_stalls {
            events.push(FaultEvent {
                at_s: rng.gen_range(0.0..horizon_s),
                kind: FaultKind::ChargerStall {
                    delay_s: rng.gen_range(lo..hi),
                },
            });
        }
        let mut plan = FaultPlan { seed, events };
        plan.sort();
        plan
    }

    /// Builds a plan from explicit events (sorted by time on construction).
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        let mut plan = FaultPlan { seed: 0, events };
        plan.sort();
        plan
    }

    fn sort(&mut self) {
        // Stable sort with a total float order: NaN times are rejected by
        // construction (gen_range never yields one), and ties keep the fixed
        // generation order, so the plan is fully deterministic.
        self.events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
    }

    /// The scheduled events, ascending by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// Runtime state of a fault plan attached to a running world.
///
/// The world pops due events out of the injector as simulation time crosses
/// them and mutates itself accordingly; the injector additionally carries the
/// *armed* state whose effect is deferred — degraded per-node efficiency,
/// the accumulated travel stall, and pending request losses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Index of the next un-injected event.
    next: usize,
    /// Per-node charging-efficiency factors; empty means "all 1.0" and the
    /// vector is only materialized by the first degradation.
    efficiency: Vec<f64>,
    /// Armed travel delay applied to (and cleared by) the charger's next
    /// move, seconds.
    pending_stall_s: f64,
    /// Nodes whose next charging request is dropped, arm order.
    armed_losses: Vec<NodeId>,
}

impl FaultInjector {
    /// Wraps a plan with fresh runtime state.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            next: 0,
            efficiency: Vec::new(),
            pending_stall_s: 0.0,
            armed_losses: Vec::new(),
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Absolute time of the next un-injected event, if any.
    pub fn next_event_at(&self) -> Option<f64> {
        self.plan.events.get(self.next).map(|e| e.at_s)
    }

    /// Pops the next event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: f64) -> Option<FaultEvent> {
        let event = *self.plan.events.get(self.next)?;
        if event.at_s <= now {
            self.next += 1;
            Some(event)
        } else {
            None
        }
    }

    /// Events injected so far.
    pub fn injected(&self) -> usize {
        self.next
    }

    /// The charging-efficiency factor of `node` (1.0 unless degraded).
    pub fn efficiency(&self, node: NodeId) -> f64 {
        self.efficiency.get(node.0).copied().unwrap_or(1.0)
    }

    /// Compounds a degradation of `node` by `factor` (network of `n` nodes).
    pub fn degrade(&mut self, node: NodeId, factor: f64, n: usize) {
        if self.efficiency.is_empty() {
            self.efficiency.resize(n.max(node.0 + 1), 1.0);
        } else if self.efficiency.len() <= node.0 {
            self.efficiency.resize(node.0 + 1, 1.0);
        }
        self.efficiency[node.0] = (self.efficiency[node.0] * factor).max(0.0);
    }

    /// Arms `delay_s` of travel stall (accumulates until taken).
    pub fn arm_stall(&mut self, delay_s: f64) {
        self.pending_stall_s += delay_s.max(0.0);
    }

    /// Takes (and clears) the armed travel stall.
    pub fn take_stall(&mut self) -> f64 {
        std::mem::replace(&mut self.pending_stall_s, 0.0)
    }

    /// The armed (not yet taken) travel stall, seconds.
    pub fn pending_stall_s(&self) -> f64 {
        self.pending_stall_s
    }

    /// Arms a request loss for `node`.
    pub fn arm_request_loss(&mut self, node: NodeId) {
        self.armed_losses.push(node);
    }

    /// Consumes one armed request loss for `node`, if any.
    pub fn consume_request_loss(&mut self, node: NodeId) -> bool {
        match self.armed_losses.iter().position(|&n| n == node) {
            Some(idx) => {
                self.armed_losses.remove(idx);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = FaultConfig::uniform(5);
        let a = FaultPlan::generate(42, 30, 1.0e6, &cfg);
        let b = FaultPlan::generate(42, 30, 1.0e6, &cfg);
        let c = FaultPlan::generate(43, 30, 1.0e6, &cfg);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds must give different plans");
        assert_eq!(a.len(), cfg.total());
    }

    #[test]
    fn events_are_sorted_and_inside_horizon() {
        let plan = FaultPlan::generate(7, 50, 5_000.0, &FaultConfig::uniform(8));
        let mut last = 0.0;
        for e in plan.events() {
            assert!(e.at_s >= last, "events must ascend");
            assert!((0.0..5_000.0).contains(&e.at_s));
            last = e.at_s;
        }
    }

    #[test]
    fn none_plan_is_empty_and_injector_is_inert() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        assert!(inj.plan().is_empty());
        assert_eq!(inj.next_event_at(), None);
        assert_eq!(inj.pop_due(f64::INFINITY), None);
        assert_eq!(inj.efficiency(NodeId(3)), 1.0);
        assert_eq!(inj.take_stall(), 0.0);
        assert!(!inj.consume_request_loss(NodeId(0)));
    }

    #[test]
    fn pop_due_respects_time_and_order() {
        let plan = FaultPlan::from_events(vec![
            FaultEvent {
                at_s: 20.0,
                kind: FaultKind::ChargerStall { delay_s: 5.0 },
            },
            FaultEvent {
                at_s: 10.0,
                kind: FaultKind::NodeFailure { node: NodeId(1) },
            },
        ]);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.next_event_at(), Some(10.0));
        assert_eq!(inj.pop_due(5.0), None);
        let first = inj.pop_due(10.0).unwrap();
        assert_eq!(first.kind, FaultKind::NodeFailure { node: NodeId(1) });
        assert_eq!(inj.pop_due(15.0), None);
        assert!(inj.pop_due(25.0).is_some());
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn degradations_compound_and_stalls_accumulate() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        inj.degrade(NodeId(2), 0.5, 4);
        inj.degrade(NodeId(2), 0.5, 4);
        assert!((inj.efficiency(NodeId(2)) - 0.25).abs() < 1e-12);
        assert_eq!(inj.efficiency(NodeId(0)), 1.0);
        inj.arm_stall(10.0);
        inj.arm_stall(20.0);
        assert_eq!(inj.pending_stall_s(), 30.0);
        assert_eq!(inj.take_stall(), 30.0);
        assert_eq!(inj.take_stall(), 0.0);
    }

    #[test]
    fn request_losses_are_consumed_once_per_arming() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        inj.arm_request_loss(NodeId(4));
        assert!(!inj.consume_request_loss(NodeId(3)));
        assert!(inj.consume_request_loss(NodeId(4)));
        assert!(!inj.consume_request_loss(NodeId(4)));
    }

    #[test]
    fn injector_serde_round_trips_runtime_state() {
        use serde::{Deserialize, Serialize};
        let plan = FaultPlan::generate(3, 10, 100.0, &FaultConfig::uniform(2));
        let mut inj = FaultInjector::new(plan);
        inj.pop_due(f64::INFINITY);
        inj.degrade(NodeId(1), 0.7, 10);
        inj.arm_stall(12.5);
        inj.arm_request_loss(NodeId(9));
        let back = FaultInjector::from_value(&inj.to_value()).unwrap();
        assert_eq!(back, inj);
    }
}
