//! A panic inside a shard worker must surface as a typed
//! [`SimError::ShardPanic`] naming the poisoned shard — never a process
//! abort, a deadlock, or a silent partial merge.
//!
//! Lives in its own integration-test binary (one process per file) because it
//! sets `WRSN_FORCE_SHARD_PANIC`, which is read once per process and would
//! poison every sibling test sharing the binary.

use wrsn_net::energy::Battery;
use wrsn_net::node::SensorNode;
use wrsn_net::{Network, Point, Region};
use wrsn_sim::{MobileCharger, SimError, World, WorldConfig};

#[test]
fn forced_shard_panic_surfaces_as_a_typed_error() {
    // Read before the parallel module caches the variable.
    std::env::set_var("WRSN_FORCE_SHARD_PANIC", "1");

    let deployed = wrsn_net::deploy::uniform(&Region::square(60.0), 32, 9);
    let nodes: Vec<SensorNode> = deployed
        .iter()
        .map(|n| SensorNode::with_battery(n.position(), Battery::new(150.0, 30.0)))
        .collect();
    let net = Network::build(nodes, Point::new(30.0, 30.0), 20.0);
    let charger = MobileCharger::standard(Point::new(30.0, 30.0));
    let mut world = World::new(
        net,
        charger,
        WorldConfig {
            horizon_s: 1.0e6,
            ..WorldConfig::default()
        },
    );
    world.set_shards(4);
    world.set_threads(2);

    let err = world.advance_by(50_000.0).expect_err("shard 1 must panic");
    match err {
        SimError::ShardPanic { shard, message } => {
            assert_eq!(shard, 1, "the poisoned shard index must survive the join");
            assert!(
                message.contains("forced shard panic"),
                "panic payload must be preserved, got: {message}"
            );
        }
        other => panic!("expected ShardPanic, got {other:?}"),
    }

    // The world is still usable: state from the failed segment was never
    // merged, and dropping to sequential execution (which never hits the
    // poison check — the env value stays cached for the process) succeeds.
    world.set_threads(1);
    world
        .advance_by(1_000.0)
        .expect("sequential advance recovers");
}
