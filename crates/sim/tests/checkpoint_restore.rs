//! Checkpoint/restore correctness under random fault plans.
//!
//! The contract is bitwise: restoring a [`Checkpoint`] into *any* world and
//! re-advancing must reproduce the donor world's continued trajectory
//! exactly — same battery bit patterns, same event trace, same fault
//! bookkeeping. The property test drives randomly sized worlds with randomly
//! generated fault plans to a random snapshot instant, then compares the
//! continued run against the restored run through full state serialization
//! (which covers clocks, batteries, traces, pending requests, and the
//! injector cursor in one shot).

use proptest::prelude::*;
use wrsn_net::energy::Battery;
use wrsn_net::node::SensorNode;
use wrsn_net::{Network, Point, Region};
use wrsn_sim::fault::{FaultConfig, FaultPlan};
use wrsn_sim::{MobileCharger, World, WorldConfig};

fn build_world(nodes: usize, seed: u64, horizon_s: f64) -> World {
    // Small batteries so deaths (and the fault plan) land inside the window.
    let deployed = wrsn_net::deploy::uniform(&Region::square(60.0), nodes, seed);
    let nodes: Vec<SensorNode> = deployed
        .iter()
        .map(|n| SensorNode::with_battery(n.position(), Battery::new(150.0, 30.0)))
        .collect();
    let net = Network::build(nodes, Point::new(30.0, 30.0), 20.0);
    let charger = MobileCharger::standard(Point::new(30.0, 30.0));
    World::new(
        net,
        charger,
        WorldConfig {
            horizon_s,
            ..WorldConfig::default()
        },
    )
}

fn state_json(world: &World) -> String {
    serde_json::to_string(world).expect("serialize world")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// snapshot → restore → advance is bitwise identical to the run that
    /// never stopped, for arbitrary fault plans and snapshot instants.
    #[test]
    fn restore_and_readvance_matches_uninterrupted_run(
        nodes in 3usize..10,
        seed in 0u64..1_000_000,
        intensity in 0usize..4,
        t1 in 1.0e3f64..6.0e4,
        t2 in 1.0e3f64..6.0e4,
    ) {
        let horizon = 2.0e5;
        let plan = FaultPlan::generate(seed, nodes, horizon, &FaultConfig::uniform(intensity));

        let mut donor = build_world(nodes, seed, horizon).with_fault_plan(plan.clone());
        donor.advance_by(t1).expect("advance to snapshot");
        let checkpoint = donor.snapshot();
        donor.advance_by(t2).expect("advance past snapshot");

        // Restore into an unrelated world: every field must come from the
        // checkpoint, nothing from the host.
        let mut restored = build_world(3, seed ^ 1, 1.0);
        restored.restore(&checkpoint);
        prop_assert_eq!(restored.time_s(), checkpoint.world().time_s());
        restored.advance_by(t2).expect("re-advance");

        prop_assert_eq!(state_json(&donor), state_json(&restored));
    }

    /// Fault plans are a pure function of their inputs, sorted, and bounded
    /// by the horizon.
    #[test]
    fn fault_plans_are_deterministic_sorted_and_bounded(
        seed in 0u64..1_000_000,
        nodes in 1usize..50,
        intensity in 0usize..6,
        horizon in 1.0e3f64..1.0e6,
    ) {
        let config = FaultConfig::uniform(intensity);
        let a = FaultPlan::generate(seed, nodes, horizon, &config);
        let b = FaultPlan::generate(seed, nodes, horizon, &config);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), config.total());
        for pair in a.events().windows(2) {
            prop_assert!(pair[0].at_s <= pair[1].at_s);
        }
        for event in a.events() {
            prop_assert!(event.at_s >= 0.0 && event.at_s <= horizon);
        }
    }

    /// A checkpoint survives serialization: JSON round-trip, restore, and
    /// re-advance still matches the donor bitwise.
    #[test]
    fn serialized_checkpoint_restores_bitwise(
        nodes in 3usize..8,
        seed in 0u64..1_000_000,
        intensity in 0usize..3,
        t1 in 1.0e3f64..4.0e4,
        t2 in 1.0e3f64..4.0e4,
    ) {
        let horizon = 2.0e5;
        let plan = FaultPlan::generate(seed, nodes, horizon, &FaultConfig::uniform(intensity));

        let mut donor = build_world(nodes, seed, horizon).with_fault_plan(plan);
        donor.advance_by(t1).expect("advance to snapshot");
        let checkpoint = donor.snapshot();
        donor.advance_by(t2).expect("advance past snapshot");

        let wire = serde_json::to_string(&checkpoint).expect("serialize checkpoint");
        let thawed: wrsn_sim::Checkpoint = serde_json::from_str(&wire).expect("parse checkpoint");
        let mut restored = build_world(3, seed ^ 1, 1.0);
        restored.restore(&thawed);
        restored.advance_by(t2).expect("re-advance");

        prop_assert_eq!(state_json(&donor), state_json(&restored));
    }
}
