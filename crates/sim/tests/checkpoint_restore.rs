//! Checkpoint/restore correctness under random fault plans.
//!
//! The contract is bitwise: restoring a [`Checkpoint`] into *any* world and
//! re-advancing must reproduce the donor world's continued trajectory
//! exactly — same battery bit patterns, same event trace, same fault
//! bookkeeping. The property test drives randomly sized worlds with randomly
//! generated fault plans to a random snapshot instant, then compares the
//! continued run against the restored run through full state serialization
//! (which covers clocks, batteries, traces, pending requests, and the
//! injector cursor in one shot).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use wrsn_net::energy::Battery;
use wrsn_net::node::SensorNode;
use wrsn_net::{Network, Point, Region};
use wrsn_sim::fault::{FaultConfig, FaultPlan};
use wrsn_sim::obs::{Counter, StatsRecorder};
use wrsn_sim::{
    store, CheckpointPolicy, Checkpointer, MobileCharger, SimError, StoreError, World, WorldConfig,
};

fn build_world(nodes: usize, seed: u64, horizon_s: f64) -> World {
    // Small batteries so deaths (and the fault plan) land inside the window.
    let deployed = wrsn_net::deploy::uniform(&Region::square(60.0), nodes, seed);
    let nodes: Vec<SensorNode> = deployed
        .iter()
        .map(|n| SensorNode::with_battery(n.position(), Battery::new(150.0, 30.0)))
        .collect();
    let net = Network::build(nodes, Point::new(30.0, 30.0), 20.0);
    let charger = MobileCharger::standard(Point::new(30.0, 30.0));
    World::new(
        net,
        charger,
        WorldConfig {
            horizon_s,
            ..WorldConfig::default()
        },
    )
}

fn state_json(world: &World) -> String {
    serde_json::to_string(world).expect("serialize world")
}

fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "wrsn-ckpt-test-{tag}-{}-{}.ckpt",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// snapshot → restore → advance is bitwise identical to the run that
    /// never stopped, for arbitrary fault plans and snapshot instants.
    #[test]
    fn restore_and_readvance_matches_uninterrupted_run(
        nodes in 3usize..10,
        seed in 0u64..1_000_000,
        intensity in 0usize..4,
        t1 in 1.0e3f64..6.0e4,
        t2 in 1.0e3f64..6.0e4,
    ) {
        let horizon = 2.0e5;
        let plan = FaultPlan::generate(seed, nodes, horizon, &FaultConfig::uniform(intensity));

        let mut donor = build_world(nodes, seed, horizon).with_fault_plan(plan.clone());
        donor.advance_by(t1).expect("advance to snapshot");
        let checkpoint = donor.snapshot();
        donor.advance_by(t2).expect("advance past snapshot");

        // Restore into an unrelated world: every field must come from the
        // checkpoint, nothing from the host.
        let mut restored = build_world(3, seed ^ 1, 1.0);
        restored.restore(&checkpoint);
        prop_assert_eq!(restored.time_s(), checkpoint.world().time_s());
        restored.advance_by(t2).expect("re-advance");

        prop_assert_eq!(state_json(&donor), state_json(&restored));
    }

    /// Fault plans are a pure function of their inputs, sorted, and bounded
    /// by the horizon.
    #[test]
    fn fault_plans_are_deterministic_sorted_and_bounded(
        seed in 0u64..1_000_000,
        nodes in 1usize..50,
        intensity in 0usize..6,
        horizon in 1.0e3f64..1.0e6,
    ) {
        let config = FaultConfig::uniform(intensity);
        let a = FaultPlan::generate(seed, nodes, horizon, &config);
        let b = FaultPlan::generate(seed, nodes, horizon, &config);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), config.total());
        for pair in a.events().windows(2) {
            prop_assert!(pair[0].at_s <= pair[1].at_s);
        }
        for event in a.events() {
            prop_assert!(event.at_s >= 0.0 && event.at_s <= horizon);
        }
    }

    /// A checkpoint survives serialization: JSON round-trip, restore, and
    /// re-advance still matches the donor bitwise.
    #[test]
    fn serialized_checkpoint_restores_bitwise(
        nodes in 3usize..8,
        seed in 0u64..1_000_000,
        intensity in 0usize..3,
        t1 in 1.0e3f64..4.0e4,
        t2 in 1.0e3f64..4.0e4,
    ) {
        let horizon = 2.0e5;
        let plan = FaultPlan::generate(seed, nodes, horizon, &FaultConfig::uniform(intensity));

        let mut donor = build_world(nodes, seed, horizon).with_fault_plan(plan);
        donor.advance_by(t1).expect("advance to snapshot");
        let checkpoint = donor.snapshot();
        donor.advance_by(t2).expect("advance past snapshot");

        let wire = serde_json::to_string(&checkpoint).expect("serialize checkpoint");
        let thawed: wrsn_sim::Checkpoint = serde_json::from_str(&wire).expect("parse checkpoint");
        let mut restored = build_world(3, seed ^ 1, 1.0);
        restored.restore(&thawed);
        restored.advance_by(t2).expect("re-advance");

        prop_assert_eq!(state_json(&donor), state_json(&restored));
    }

    /// The full disk round trip — `store::save` → `store::load` → restore →
    /// re-advance — is bitwise identical to the uninterrupted trajectory,
    /// for arbitrary fault plans and snapshot instants.
    #[test]
    fn persisted_checkpoint_restores_bitwise(
        nodes in 3usize..8,
        seed in 0u64..1_000_000,
        intensity in 0usize..3,
        t1 in 1.0e3f64..4.0e4,
        t2 in 1.0e3f64..4.0e4,
    ) {
        let horizon = 2.0e5;
        let plan = FaultPlan::generate(seed, nodes, horizon, &FaultConfig::uniform(intensity));

        let mut donor = build_world(nodes, seed, horizon).with_fault_plan(plan);
        donor.advance_by(t1).expect("advance to snapshot");
        let checkpoint = donor.snapshot();
        donor.advance_by(t2).expect("advance past snapshot");

        let path = temp_path("roundtrip");
        store::save(&path, &checkpoint).expect("save checkpoint");
        let thawed = store::load(&path).expect("load checkpoint");
        std::fs::remove_file(&path).ok();

        let mut restored = build_world(3, seed ^ 1, 1.0);
        restored.restore(&thawed);
        prop_assert_eq!(restored.time_s(), checkpoint.world().time_s());
        restored.advance_by(t2).expect("re-advance");

        prop_assert_eq!(state_json(&donor), state_json(&restored));
    }

    /// Flipping any single byte of a checkpoint file makes `store::load`
    /// return a typed error — never a panic, never a silently wrong world.
    #[test]
    fn corrupted_checkpoint_is_rejected_with_a_typed_error(
        seed in 0u64..1_000_000,
        t1 in 1.0e3f64..2.0e4,
        flip in 0usize..1_000_000_000,
    ) {
        let mut donor = build_world(4, seed, 2.0e5);
        donor.advance_by(t1).expect("advance");
        let path = temp_path("corrupt");
        store::save(&path, &donor.snapshot()).expect("save checkpoint");

        let mut bytes = std::fs::read(&path).expect("read back");
        let at = flip % bytes.len();
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrite corrupted");

        let result = store::load(&path);
        std::fs::remove_file(&path).ok();
        let err = match result {
            Err(e) => e,
            // A flipped payload byte can keep the JSON well-formed only if
            // the checksum also matched — impossible for a 1-bit flip.
            Ok(_) => return Err(TestCaseError::fail("corrupted checkpoint loaded")),
        };
        prop_assert!(matches!(
            err,
            StoreError::BadMagic { .. }
                | StoreError::UnsupportedVersion { .. }
                | StoreError::MalformedHeader { .. }
                | StoreError::Truncated { .. }
                | StoreError::ChecksumMismatch { .. }
                | StoreError::Payload { .. }
        ), "unexpected error: {err}");
    }

    /// Truncating a checkpoint file at any point makes `store::load` return
    /// a typed error — never a panic.
    #[test]
    fn truncated_checkpoint_is_rejected_with_a_typed_error(
        seed in 0u64..1_000_000,
        t1 in 1.0e3f64..2.0e4,
        cut in 0usize..1_000_000_000,
    ) {
        let mut donor = build_world(4, seed, 2.0e5);
        donor.advance_by(t1).expect("advance");
        let path = temp_path("truncate");
        store::save(&path, &donor.snapshot()).expect("save checkpoint");

        let bytes = std::fs::read(&path).expect("read back");
        let keep = cut % bytes.len(); // strictly shorter than the original
        std::fs::write(&path, &bytes[..keep]).expect("rewrite truncated");

        let result = store::load(&path);
        std::fs::remove_file(&path).ok();
        let err = match result {
            Err(e) => e,
            Ok(_) => return Err(TestCaseError::fail("truncated checkpoint loaded")),
        };
        prop_assert!(matches!(
            err,
            StoreError::BadMagic { .. }
                | StoreError::MalformedHeader { .. }
                | StoreError::Truncated { .. }
        ), "unexpected error: {err}");
    }
}

/// A world carrying a [`Checkpointer`] writes periodic snapshots during
/// `advance_by_with`, counts them in [`Counter::CheckpointsWritten`], and the
/// latest file restores bitwise.
#[test]
fn checkpointer_writes_periodic_loadable_snapshots() {
    let path = temp_path("periodic");
    let mut world = build_world(5, 7, 2.0e5);
    let mut reference = world.clone();
    world.set_checkpointer(Some(Checkpointer::new(
        &path,
        CheckpointPolicy::every(500.0),
    )));

    let mut stats = StatsRecorder::new();
    world.advance_by_with(2_000.0, &mut stats).expect("advance");

    let written = world.checkpointer().expect("still attached").written();
    assert!(written >= 1, "no checkpoints written");
    assert_eq!(stats.counter(Counter::CheckpointsWritten), written);

    // The file on disk is the latest snapshot; restoring it and re-advancing
    // to the same instant must match the attached world bitwise (the
    // checkpointer itself is never part of the persisted state).
    let thawed = store::load(&path).expect("load latest checkpoint");
    std::fs::remove_file(&path).ok();
    let at_s = thawed.world().time_s();
    assert!(at_s > 0.0 && at_s <= 2_000.0);
    reference.restore(&thawed);
    reference.advance_by(2_000.0 - at_s).expect("re-advance");
    world.set_checkpointer(None);
    assert_eq!(state_json(&world), state_json(&reference));
}

/// Cancelling the thread's token makes `advance_by` return
/// [`SimError::Cancelled`] instead of running to the horizon.
#[test]
fn cancelled_token_interrupts_advance() {
    use wrsn_sim::cancel::{CancelToken, ScopedCancel};
    let token = CancelToken::new();
    token.cancel();
    let _guard = ScopedCancel::install(token);
    let mut world = build_world(4, 11, 2.0e5);
    let err = world.advance_by(1_000.0).expect_err("must be cancelled");
    assert_eq!(err, SimError::Cancelled);
}
