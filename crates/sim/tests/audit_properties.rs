//! Property tests of the online base-station audit ([`wrsn_sim::audit`]).
//!
//! Three contracts, each driven over randomly sized worlds and seeds:
//!
//! 1. **No false convictions**: on a benign, fault-free run — an honest
//!    charger answering requests at default detector aggressiveness — the
//!    digital twin must convict nobody, no matter how many sessions it
//!    probes.
//! 2. **Execution-strategy independence**: probe selection and twin verdicts
//!    are part of the serial in-world code, so the full world snapshot
//!    (audit ledger included) must stay byte-identical across every
//!    thread-count × shard-count combination.
//! 3. **Snapshot durability**: a conviction reached mid-campaign must
//!    survive `World::snapshot`/JSON round-trip/`restore`, and the restored
//!    campaign must finish bitwise identically to the uninterrupted one.

use proptest::prelude::*;
use serde::Deserialize;
use wrsn_net::energy::Battery;
use wrsn_net::node::SensorNode;
use wrsn_net::{Network, Point, Region};
use wrsn_sim::{
    AuditConfig, ChargeMode, ChargerAction, ChargerPolicy, MobileCharger, World, WorldConfig,
    WorldView,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn build_world(nodes: usize, seed: u64, horizon_s: f64) -> World {
    // Small batteries so requests (and spoof kills) land inside the window.
    let deployed = wrsn_net::deploy::uniform(&Region::square(60.0), nodes, seed);
    let nodes: Vec<SensorNode> = deployed
        .iter()
        .map(|n| SensorNode::with_battery(n.position(), Battery::new(150.0, 30.0)))
        .collect();
    let net = Network::build(nodes, Point::new(30.0, 30.0), 20.0);
    let charger = MobileCharger::standard(Point::new(30.0, 30.0));
    World::new(
        net,
        charger,
        WorldConfig {
            horizon_s,
            ..WorldConfig::default()
        },
    )
}

fn state_json(world: &World) -> String {
    serde_json::to_string(world).expect("serialize world")
}

/// Benign baseline: answer every charging request honestly, wait otherwise.
struct HonestOnDemand;

impl ChargerPolicy for HonestOnDemand {
    fn next_action(&mut self, view: &WorldView<'_>) -> ChargerAction {
        if view.time_left_s() <= 0.0 || view.charger.is_exhausted() {
            return ChargerAction::Finish;
        }
        if let Some(r) = view.requests.iter().find(|r| view.is_alive(r.node)) {
            return ChargerAction::Charge {
                node: r.node,
                duration_s: 600.0,
                mode: ChargeMode::Honest,
            };
        }
        ChargerAction::Wait(1_000.0_f64.min(view.time_left_s()))
    }

    fn name(&self) -> &str {
        "honest-on-demand"
    }
}

/// Deterministic mixed-mode campaign: visits nodes round-robin, cycling
/// honest / spoofed / partial sessions — passes, failures, and convictions
/// all occur, which is exactly what the identity and round-trip properties
/// need to be non-vacuous.
struct MixedSpree {
    issued: usize,
    count: usize,
}

impl ChargerPolicy for MixedSpree {
    fn next_action(&mut self, view: &WorldView<'_>) -> ChargerAction {
        if self.issued >= self.count || view.time_left_s() <= 0.0 {
            return ChargerAction::Finish;
        }
        let k = self.issued;
        self.issued += 1;
        let node = wrsn_net::NodeId(k % view.net.node_count());
        ChargerAction::Charge {
            node,
            duration_s: 400.0 + 100.0 * (k % 3) as f64,
            mode: match k % 3 {
                0 => ChargeMode::Honest,
                1 => ChargeMode::Spoofed,
                _ => ChargeMode::Partial { fraction: 0.4 },
            },
        }
    }

    fn name(&self) -> &str {
        "mixed-spree"
    }
}

/// Every probe is issued (`probe_rate` 1) so the properties never pass
/// vacuously on an unlucky selection draw.
fn eager_audit(seed: u64) -> AuditConfig {
    AuditConfig {
        probe_rate: 1.0,
        ..AuditConfig::default()
    }
    .with_seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite 3a: zero false positives on a benign fault-free run at
    /// default aggressiveness.
    #[test]
    fn benign_fault_free_run_raises_no_convictions(
        nodes in 6usize..20,
        seed in 0u64..1_000,
    ) {
        let mut world = build_world(nodes, seed, 150_000.0)
            .with_audit(AuditConfig::default().with_seed(seed));
        world.run(&mut HonestOnDemand).expect("run");
        let audit = world.audit().expect("audit attached");
        prop_assert_eq!(
            audit.convictions().len(),
            0,
            "honest charging convicted: {:?}",
            audit.convictions()
        );
        prop_assert_eq!(audit.starved(), 0, "no budget, nothing starves");
    }

    /// Satellite 3b: seeded challenge selection and twin verdicts are
    /// byte-identical across thread × shard counts (the audit ledger is part
    /// of the serialized world, so full-snapshot equality covers it).
    #[test]
    fn audit_verdicts_identical_across_threads_and_shards(
        nodes in 6usize..16,
        seed in 0u64..1_000,
        sessions in 4usize..10,
    ) {
        let run_one = |threads: usize, shards: usize| {
            let mut world = build_world(nodes, seed, 150_000.0)
                .with_audit(eager_audit(seed));
            world.set_threads(threads);
            world.set_shards(shards);
            world
                .run(&mut MixedSpree { issued: 0, count: sessions })
                .expect("run");
            prop_assert!(
                !world.audit().expect("attached").probes().is_empty(),
                "premise: sessions were probed"
            );
            Ok(state_json(&world))
        };
        let reference = run_one(1, 1)?;
        for threads in THREAD_COUNTS {
            for shards in SHARD_COUNTS {
                prop_assert_eq!(
                    &run_one(threads, shards)?,
                    &reference,
                    "threads {} x shards {} diverged",
                    threads,
                    shards
                );
            }
        }
    }

    /// Satellite 3c: a conviction reached mid-campaign round-trips through
    /// snapshot → JSON → restore, and the restored world finishes the
    /// campaign bitwise identically to the uninterrupted one.
    #[test]
    fn conviction_round_trips_through_snapshot_restore(
        nodes in 6usize..16,
        seed in 0u64..1_000,
        first_leg in 2usize..5,
    ) {
        // Leg 1 always contains a spoofed session (k = 1), so by snapshot
        // time at least one conviction exists (probe_rate 1, k-of-m 1-of-4).
        let mut world = build_world(nodes, seed, 300_000.0)
            .with_audit(eager_audit(seed));
        world
            .run(&mut MixedSpree { issued: 0, count: first_leg })
            .expect("leg 1");
        let convicted_mid = world.audit().expect("attached").convictions().len();
        prop_assert!(convicted_mid > 0, "premise: mid-campaign conviction");

        let checkpoint = world.snapshot();
        // Round-trip the snapshot through JSON, as a disk checkpoint would.
        let json = state_json(&world);
        let value = serde_json::from_str(&json).expect("parse");
        let revived = World::from_value(&value).expect("deserialize");
        prop_assert_eq!(
            revived.audit().expect("attached"),
            world.audit().expect("attached"),
            "audit ledger did not round-trip"
        );
        let mut restored = build_world(nodes, seed, 300_000.0);
        restored.restore(&checkpoint);

        // Both worlds finish the campaign; the restored one must track the
        // uninterrupted one bitwise, convictions included.
        let mut finish = MixedSpree { issued: first_leg, count: first_leg + 3 };
        world.run(&mut finish).expect("leg 2");
        let mut finish_restored = MixedSpree { issued: first_leg, count: first_leg + 3 };
        restored.run(&mut finish_restored).expect("restored leg 2");
        prop_assert_eq!(&state_json(&restored), &state_json(&world));
        prop_assert!(
            world.audit().expect("attached").convictions().len() >= convicted_mid,
            "convictions lost after resume"
        );
    }
}
