//! Spatial sharding is a pure execution strategy: a world advanced with any
//! shard count must serialize byte-for-byte identically to the unsharded
//! world — through free-running drains, charging sessions, fault injection,
//! and mid-run snapshot/restore. The property tests drive randomly sized
//! worlds through all of those and compare full JSON snapshots (batteries,
//! clock, trace, requests, fault bookkeeping) across shard counts
//! {1, 2, 7, 16}.
//!
//! Worker threads are the same kind of strategy one level up: the parallel
//! shard executor fans shards over threads, and the thread-axis properties
//! below pin bitwise equality across threads {1, 2, 7} × shards
//! {1, 2, 7, 16}, including mid-run snapshot/restore into a different thread
//! count and cooperative cancellation through the threaded path.

use proptest::prelude::*;
use wrsn_net::energy::Battery;
use wrsn_net::node::SensorNode;
use wrsn_net::{Network, NodeId, Point, Region};
use wrsn_sim::fault::{FaultConfig, FaultPlan};
use wrsn_sim::{
    ChargeMode, ChargerAction, ChargerPolicy, MobileCharger, World, WorldConfig, WorldView,
};

/// The shard counts every property is checked across, against the
/// unsharded (count 1) reference.
const SHARD_COUNTS: [usize; 3] = [2, 7, 16];

/// The thread counts the thread-axis properties sweep (crossed with
/// [`THREADED_SHARD_COUNTS`]).
const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Shard counts crossed with [`THREAD_COUNTS`]: includes 1 so the
/// unsharded fast path is exercised under every thread count too.
const THREADED_SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];

fn build_world(nodes: usize, seed: u64, horizon_s: f64) -> World {
    // Small batteries so deaths land inside the window.
    let deployed = wrsn_net::deploy::uniform(&Region::square(60.0), nodes, seed);
    let nodes: Vec<SensorNode> = deployed
        .iter()
        .map(|n| SensorNode::with_battery(n.position(), Battery::new(150.0, 30.0)))
        .collect();
    let net = Network::build(nodes, Point::new(30.0, 30.0), 20.0);
    let charger = MobileCharger::standard(Point::new(30.0, 30.0));
    World::new(
        net,
        charger,
        WorldConfig {
            horizon_s,
            ..WorldConfig::default()
        },
    )
}

fn snapshot_json(world: &World) -> String {
    serde_json::to_string(world).expect("serialize world")
}

/// Charges one node honestly for a while, then finishes — exercises the
/// injection path of the segment loop (the only per-node op the free-running
/// drain never hits).
struct ChargeOneThenIdle {
    node: NodeId,
    done: bool,
}

impl ChargerPolicy for ChargeOneThenIdle {
    fn next_action(&mut self, _view: &WorldView<'_>) -> ChargerAction {
        if self.done {
            ChargerAction::Finish
        } else {
            self.done = true;
            ChargerAction::Charge {
                node: self.node,
                duration_s: 600.0,
                mode: ChargeMode::Honest,
            }
        }
    }
    fn name(&self) -> &str {
        "charge-one"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Free-running advance (drains, deaths, routing repair, request
    /// issuance) is bitwise identical at every shard count.
    #[test]
    fn sharded_advance_matches_unsharded(
        nodes in 8usize..40,
        seed in 0u64..1_000,
        dt in 1_000.0..200_000.0f64,
    ) {
        let mut reference = build_world(nodes, seed, 1.0e6);
        reference.set_shards(1);
        reference.advance_by(dt).expect("advance");
        let expected = snapshot_json(&reference);
        for count in SHARD_COUNTS {
            let mut sharded = build_world(nodes, seed, 1.0e6);
            sharded.set_shards(count);
            sharded.advance_by(dt).expect("advance");
            prop_assert_eq!(
                &snapshot_json(&sharded), &expected,
                "shard count {} diverged from unsharded", count
            );
        }
    }

    /// A charging session (battery injection mid-segment) stays bitwise
    /// identical at every shard count.
    #[test]
    fn sharded_charging_session_matches_unsharded(
        nodes in 8usize..32,
        seed in 0u64..1_000,
        target in 0usize..8,
    ) {
        let horizon = 40_000.0;
        let mut reference = build_world(nodes, seed, horizon);
        reference.set_shards(1);
        reference
            .run(&mut ChargeOneThenIdle { node: NodeId(target), done: false })
            .expect("run");
        let expected = snapshot_json(&reference);
        for count in SHARD_COUNTS {
            let mut sharded = build_world(nodes, seed, horizon);
            sharded.set_shards(count);
            sharded
                .run(&mut ChargeOneThenIdle { node: NodeId(target), done: false })
                .expect("run");
            prop_assert_eq!(
                &snapshot_json(&sharded), &expected,
                "shard count {} diverged from unsharded", count
            );
        }
    }

    /// An active fault plan (crashes with routing repair, degradations,
    /// request losses) does not break shard equivalence.
    #[test]
    fn sharded_advance_matches_under_faults(
        nodes in 8usize..32,
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        dt in 10_000.0..200_000.0f64,
    ) {
        let cfg = FaultConfig {
            node_failures: 2,
            degradations: 1,
            request_losses: 1,
            ..FaultConfig::default()
        };
        let plan = |n: usize| FaultPlan::generate(fault_seed, n, dt, &cfg);
        let mut reference = build_world(nodes, seed, 1.0e6);
        reference.set_shards(1);
        reference.set_fault_plan(plan(nodes));
        reference.advance_by(dt).expect("advance");
        let expected = snapshot_json(&reference);
        for count in SHARD_COUNTS {
            let mut sharded = build_world(nodes, seed, 1.0e6);
            sharded.set_shards(count);
            sharded.set_fault_plan(plan(nodes));
            sharded.advance_by(dt).expect("advance");
            prop_assert_eq!(
                &snapshot_json(&sharded), &expected,
                "shard count {} diverged from unsharded under faults", count
            );
        }
    }

    /// Snapshot mid-run in one sharding configuration, restore into a world
    /// with a *different* shard count, re-advance: still bitwise identical
    /// to the uninterrupted unsharded run (a restored world keeps its own
    /// shard count, and sharding never leaks into the snapshot).
    #[test]
    fn snapshot_restore_across_shard_counts(
        nodes in 8usize..32,
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        t_snap in 5_000.0..50_000.0f64,
    ) {
        let cfg = FaultConfig::uniform(1);
        let total = 120_000.0;
        // The reference splits its advance at the same instant the resumed
        // runs do: a segment boundary at t_snap changes float stepping (two
        // exact drains instead of one), sharded or not, so only the same
        // split is comparable bitwise.
        let mut reference = build_world(nodes, seed, 1.0e6);
        reference.set_shards(1);
        reference.set_fault_plan(FaultPlan::generate(fault_seed, nodes, total, &cfg));
        reference.advance_by(t_snap).expect("advance");
        reference.advance_by(total - t_snap).expect("advance");
        let expected = snapshot_json(&reference);
        for (snap_shards, resume_shards) in [(1, 7), (7, 1), (2, 16)] {
            let mut donor = build_world(nodes, seed, 1.0e6);
            donor.set_shards(snap_shards);
            donor.set_fault_plan(FaultPlan::generate(fault_seed, nodes, total, &cfg));
            donor.advance_by(t_snap).expect("advance");
            let checkpoint = donor.snapshot();

            let mut resumed = build_world(4, 0, 1.0);
            resumed.set_shards(resume_shards);
            resumed.restore(&checkpoint);
            prop_assert_eq!(resumed.shards(), resume_shards);
            resumed.advance_by(total - t_snap).expect("advance");
            prop_assert_eq!(
                &snapshot_json(&resumed), &expected,
                "snapshot at {} shards resumed at {} diverged", snap_shards, resume_shards
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The full threads × shards execution matrix — free-running drains,
    /// deaths, routing repair, a charging session and fault injection — is
    /// bitwise identical to the single-thread unsharded reference.
    #[test]
    fn threaded_advance_matches_reference(
        nodes in 8usize..32,
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        target in 0usize..8,
        dt in 10_000.0..150_000.0f64,
    ) {
        let cfg = FaultConfig {
            node_failures: 2,
            degradations: 1,
            request_losses: 1,
            ..FaultConfig::default()
        };
        let run = |threads: usize, shards: usize| {
            let mut world = build_world(nodes, seed, 1.0e6);
            world.set_shards(shards);
            world.set_threads(threads);
            world.set_fault_plan(FaultPlan::generate(fault_seed, nodes, dt, &cfg));
            world
                .run(&mut ChargeOneThenIdle { node: NodeId(target), done: false })
                .expect("run");
            world.advance_by(dt).expect("advance");
            snapshot_json(&world)
        };
        let expected = run(1, 1);
        for threads in THREAD_COUNTS {
            for shards in THREADED_SHARD_COUNTS {
                if threads == 1 && shards == 1 {
                    continue;
                }
                prop_assert_eq!(
                    &run(threads, shards), &expected,
                    "threads {} x shards {} diverged from the sequential reference",
                    threads, shards
                );
            }
        }
    }

    /// Snapshot mid-run in one threads × shards configuration, restore into
    /// a world with a different thread count, re-advance: still bitwise
    /// identical to the uninterrupted sequential run (a restored world keeps
    /// its own execution strategy, and threading never leaks into the
    /// snapshot).
    #[test]
    fn snapshot_restore_across_thread_counts(
        nodes in 8usize..32,
        seed in 0u64..1_000,
        fault_seed in 0u64..1_000,
        t_snap in 5_000.0..50_000.0f64,
    ) {
        let cfg = FaultConfig::uniform(1);
        let total = 120_000.0;
        let mut reference = build_world(nodes, seed, 1.0e6);
        reference.set_shards(1);
        reference.set_threads(1);
        reference.set_fault_plan(FaultPlan::generate(fault_seed, nodes, total, &cfg));
        reference.advance_by(t_snap).expect("advance");
        reference.advance_by(total - t_snap).expect("advance");
        let expected = snapshot_json(&reference);
        for (snap_threads, resume_threads, shards) in [(1, 7, 7), (7, 1, 7), (2, 7, 16)] {
            let mut donor = build_world(nodes, seed, 1.0e6);
            donor.set_shards(shards);
            donor.set_threads(snap_threads);
            donor.set_fault_plan(FaultPlan::generate(fault_seed, nodes, total, &cfg));
            donor.advance_by(t_snap).expect("advance");
            let checkpoint = donor.snapshot();

            let mut resumed = build_world(4, 0, 1.0);
            resumed.set_shards(shards);
            resumed.set_threads(resume_threads);
            resumed.restore(&checkpoint);
            prop_assert_eq!(resumed.threads(), resume_threads);
            resumed.advance_by(total - t_snap).expect("advance");
            prop_assert_eq!(
                &snapshot_json(&resumed), &expected,
                "snapshot at {} threads resumed at {} (shards {}) diverged",
                snap_threads, resume_threads, shards
            );
        }
    }
}

/// A pre-cancelled token must abort a threaded sharded advance at the first
/// segment poll with a typed [`wrsn_sim::SimError::Cancelled`] — the
/// coordinating thread polls once per segment, so fanning shards over worker
/// threads keeps exactly the sequential path's cancellation latency.
#[test]
fn cancellation_cuts_through_the_threaded_path() {
    let token = wrsn_sim::CancelToken::new();
    token.cancel();
    let _guard = wrsn_sim::cancel::ScopedCancel::install(token);
    let mut world = build_world(24, 3, 1.0e6);
    world.set_shards(7);
    world.set_threads(4);
    let err = world.advance_by(50_000.0).expect_err("must cancel");
    assert_eq!(err, wrsn_sim::SimError::Cancelled);
}
