//! The end-to-end benchtop experiment (`tab2`).
//!
//! Eight motes in a line on the bench, a sink at one end, a charger robot
//! crawling alongside. Three conditions on identical initial state:
//!
//! 1. **honest** — the robot runs NJNP and keeps the motes alive,
//! 2. **attack** — the robot runs the Charging Spoofing Attack,
//! 3. **absent** — no charging at all (the energy floor).
//!
//! The outcome is the per-mote table the paper's testbed section reports:
//! delivered energy under each condition, time to exhaustion under attack,
//! and whether any detector flagged the mote's sessions.

use serde::{Deserialize, Serialize};

use wrsn_core::attack::{evaluate_attack, AttackOutcome, CsaAttackPolicy};
use wrsn_core::detect::{self, EnergyReportAudit};
use wrsn_core::tide::TideConfig;
use wrsn_net::node::SensorNode;
use wrsn_net::{Network, NodeId, Point};
use wrsn_sim::{IdlePolicy, MobileCharger, SimReport, World, WorldConfig};

use crate::hardware::TestbedParams;

/// One row of the testbed table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRow {
    /// The mote.
    pub node: NodeId,
    /// Whether the attack's census counted it as a key node.
    pub is_key: bool,
    /// Energy delivered to the mote under honest charging, joules.
    pub honest_delivered_j: f64,
    /// Whether the mote survived the honest run.
    pub honest_alive: bool,
    /// Energy delivered during the attack's "charges", joules.
    pub attack_delivered_j: f64,
    /// When the mote died under attack (`None` = survived).
    pub attack_death_s: Option<f64>,
    /// Whether any detector flagged this mote during the attack run.
    pub flagged: bool,
}

/// The whole experiment's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchOutcome {
    /// Per-mote rows, by node id.
    pub rows: Vec<BenchRow>,
    /// Simulation report of the honest run.
    pub honest: SimReport,
    /// Simulation report of the attack run.
    pub attack: SimReport,
    /// Simulation report of the no-charger run.
    pub absent: SimReport,
    /// Attack accounting (exhaustion ratios, utility).
    pub outcome: AttackOutcome,
    /// Fraction of attacked motes flagged by any detector.
    pub detection_ratio: f64,
}

/// Mote-report period on the bench, seconds.
const BENCH_REPORT_INTERVAL_S: f64 = 600.0;

fn bench_world(params: &TestbedParams, horizon_s: f64) -> World {
    // Eight motes in a 1.2 m-spaced line; the sink sits 1.2 m before mote 0.
    let nodes: Vec<SensorNode> = (0..8)
        .map(|i| {
            SensorNode::with_battery(Point::new(1.2 * (i + 1) as f64, 0.0), params.buffer())
                .with_sensing_rate(params.sensing_rate_bps)
        })
        .collect();
    let net = Network::build(nodes, Point::ORIGIN, params.comm_range_m);
    let charger = MobileCharger::standard(Point::new(0.0, 0.5))
        .with_speed(0.5)
        .with_service_distance(0.3);
    let mut world = World::new(
        net,
        charger,
        WorldConfig {
            horizon_s,
            radio: params.radio(),
            sensing_radius_m: 1.0,
            ..WorldConfig::default()
        },
    );
    // Staggered mid-life levels, as after a few hours of operation.
    for i in 0..8 {
        let level = params.buffer_j * (0.30 + 0.05 * ((i * 3) % 8) as f64);
        world.set_battery_level(NodeId(i), level).unwrap();
    }
    world
}

fn bench_tide_config(params: &TestbedParams) -> TideConfig {
    TideConfig {
        radio: params.radio(),
        charge_power_w: wrsn_em::ChargeModel::powercast().power_at(0.3),
        report_interval_s: BENCH_REPORT_INTERVAL_S,
        ..TideConfig::default()
    }
}

/// Runs the three-condition experiment. `horizon_s` bounds each run;
/// `3 × buffer/idle` (a few emulated hours) is plenty.
pub fn run_bench_experiment(params: &TestbedParams, horizon_s: f64) -> BenchOutcome {
    let run_honest = || {
        // Condition 1: honest NJNP.
        let mut world = bench_world(params, horizon_s);
        let report = world
            .run(&mut wrsn_charge::Njnp::new())
            .expect("honest run");
        (world, report)
    };
    let run_attack = || {
        // Condition 2: the attack.
        let mut world = bench_world(params, horizon_s);
        let mut policy = CsaAttackPolicy::new(bench_tide_config(params));
        let report = world.run(&mut policy).expect("attack run");
        let outcome = evaluate_attack(&world, &policy);
        (world, policy, report, outcome)
    };
    let run_absent = || {
        // Condition 3: no charger.
        let mut world = bench_world(params, horizon_s);
        let report = world.run(&mut IdlePolicy).expect("charger-absent run");
        (world, report)
    };

    // The three conditions start from identical state and never interact, so
    // they can run concurrently: honest and absent on scoped workers, the
    // attack (the heaviest) on the calling thread. `WRSN_THREADS=1` keeps
    // everything sequential; either way each run is deterministic, so the
    // outcome is identical.
    let ((honest_world, honest), (attack_world, policy, attack, outcome), (_absent_world, absent)) =
        if wrsn_sim::parallel::threads() > 1 {
            std::thread::scope(|scope| {
                let h = scope.spawn(run_honest);
                let a = scope.spawn(run_absent);
                let mid = run_attack();
                (
                    h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)),
                    mid,
                    a.join().unwrap_or_else(|e| std::panic::resume_unwind(e)),
                )
            })
        } else {
            (run_honest(), run_attack(), run_absent())
        };

    // Detector verdicts on the attack run (bench-rate energy reports).
    let detectors: Vec<Box<dyn detect::Detector>> = vec![
        Box::new(detect::TrajectoryAudit::default()),
        Box::new(detect::RadiatedPowerAudit::default()),
        Box::new(EnergyReportAudit {
            report_interval_s: BENCH_REPORT_INTERVAL_S,
            rated_power_w: wrsn_em::ChargeModel::powercast().power_at(0.3),
            ..EnergyReportAudit::default()
        }),
    ];
    let reports: Vec<_> = detectors.iter().map(|d| d.analyze(&attack_world)).collect();

    let key_ids: std::collections::HashSet<NodeId> = policy
        .initial_instance()
        .map(|i| i.victims.iter().map(|v| v.node).collect())
        .unwrap_or_default();

    let mut rows = Vec::new();
    for i in 0..8 {
        let id = NodeId(i);
        let honest_delivered: f64 = honest_world
            .trace()
            .sessions_for(id)
            .map(|s| s.delivered_j)
            .sum();
        let attack_delivered: f64 = attack_world
            .trace()
            .sessions_for(id)
            .map(|s| s.delivered_j)
            .sum();
        rows.push(BenchRow {
            node: id,
            is_key: key_ids.contains(&id),
            honest_delivered_j: honest_delivered,
            honest_alive: honest_world.network().alive(i),
            attack_delivered_j: attack_delivered,
            attack_death_s: attack_world.trace().death_time_of(id),
            flagged: reports.iter().any(|r| r.flagged(id)),
        });
    }

    let attacked: Vec<NodeId> = policy.targets().iter().map(|&(n, _)| n).collect();
    let detection_ratio = if attacked.is_empty() {
        0.0
    } else {
        attacked.iter().filter(|n| rows[n.0].flagged).count() as f64 / attacked.len() as f64
    };

    BenchOutcome {
        rows,
        honest,
        attack,
        absent,
        outcome,
        detection_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> BenchOutcome {
        run_bench_experiment(&TestbedParams::default(), 120_000.0)
    }

    #[test]
    fn honest_run_keeps_more_motes_alive_than_attack() {
        let o = outcome();
        assert!(
            o.honest.alive_nodes > o.attack.alive_nodes,
            "honest {} vs attack {}",
            o.honest.alive_nodes,
            o.attack.alive_nodes
        );
    }

    #[test]
    fn attack_exhausts_its_targets_undetected() {
        let o = outcome();
        assert!(o.outcome.targeted > 0);
        assert!(
            o.outcome.exhausted_ratio >= 0.8,
            "exhausted ratio {}",
            o.outcome.exhausted_ratio
        );
        assert!(
            o.detection_ratio < 0.2,
            "detection ratio {}",
            o.detection_ratio
        );
    }

    #[test]
    fn spoofed_rows_received_less_than_honest_rows() {
        let o = outcome();
        for row in o.rows.iter().filter(|r| r.is_key) {
            if row.attack_death_s.is_some() && row.honest_delivered_j > 0.0 {
                assert!(
                    row.attack_delivered_j < 0.1 * row.honest_delivered_j,
                    "{row:?}"
                );
            }
        }
    }

    #[test]
    fn interior_line_motes_are_key() {
        let o = outcome();
        // On a line topology, every interior relay is a cut vertex.
        let keys = o.rows.iter().filter(|r| r.is_key).count();
        assert!(keys >= 4, "keys = {keys}");
    }

    #[test]
    fn absent_run_is_the_energy_floor() {
        let o = outcome();
        assert!(o.absent.total_delivered_j == 0.0);
        assert!(o.absent.alive_nodes <= o.honest.alive_nodes);
    }
}
