//! Section-II style measurement campaigns on the emulated bench.
//!
//! Each campaign produces the noisy sample series a power meter would log,
//! next to the ideal physical law, so the experiment harness can print both —
//! exactly how the paper's measurement figures juxtapose dots and fitted
//! curves.

use serde::{Deserialize, Serialize};

use wrsn_em::fit::{fit_charge_model, FitResult};
use wrsn_em::noise::MeasurementNoise;
use wrsn_em::{superposition, CancelController, Wave};

use crate::hardware::TestbedParams;

/// A measured series: `(x, ideal y, measured y)` triples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredSeries {
    /// What `x` is (e.g. "phase offset (rad)").
    pub x_label: String,
    /// What `y` is (e.g. "normalised received power").
    pub y_label: String,
    /// The samples.
    pub samples: Vec<(f64, f64, f64)>,
}

impl MeasuredSeries {
    /// Root-mean-square deviation between measured and ideal values.
    pub fn rms_error(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .samples
            .iter()
            .map(|&(_, ideal, measured)| (ideal - measured) * (ideal - measured))
            .sum();
        (sum / self.samples.len() as f64).sqrt()
    }
}

/// Received power vs. phase offset for two equal-amplitude coherent waves —
/// the paper's "the superposition is nonlinear" measurement (`fig2`).
pub fn phase_offset_campaign(params: &TestbedParams, samples: usize) -> MeasuredSeries {
    let mut meter = MeasurementNoise::new(params.seed, params.meter_noise);
    let ideal = superposition::phase_sweep(1.0, 1.0, samples);
    MeasuredSeries {
        x_label: "phase offset (rad)".to_string(),
        y_label: "normalised received power".to_string(),
        samples: ideal
            .into_iter()
            .map(|(x, y)| (x, y, meter.noisy_power(y)))
            .collect(),
    }
}

/// Received charging power vs. distance, with the `α/(d+β)²` model fitted to
/// the noisy measurements (`fig3`). Returns the series and the fit.
pub fn distance_campaign(
    params: &TestbedParams,
    distances_m: &[f64],
) -> (MeasuredSeries, FitResult) {
    let mut meter = MeasurementNoise::new(params.seed.wrapping_add(1), params.meter_noise);
    let tx = params.transmitter().at(0.0, 0.0);
    let samples: Vec<(f64, f64, f64)> = distances_m
        .iter()
        .map(|&d| {
            let ideal = tx.solo_power_at((d, 0.0));
            (d, ideal, meter.noisy_power(ideal))
        })
        .collect();
    let measured: Vec<(f64, f64)> = samples.iter().map(|&(d, _, m)| (d, m)).collect();
    let fit = fit_charge_model(&measured, 3.0).expect("campaign has enough samples");
    (
        MeasuredSeries {
            x_label: "distance (m)".to_string(),
            y_label: "received power (W)".to_string(),
            samples,
        },
        fit,
    )
}

/// Residual (suppressed) power fraction vs. the attacker's phase / amplitude
/// tuning error (`fig4`): how precise must the cancellation be?
pub fn cancellation_robustness_campaign(
    params: &TestbedParams,
    phase_errors_rad: &[f64],
    amplitude_errors: &[f64],
) -> Vec<(f64, f64, f64)> {
    let primary = params.transmitter().at(0.0, 0.0);
    let helper = params.transmitter().at(0.3, 0.0);
    let controller = CancelController::new(&primary, &helper);
    let victim = (1.0, 0.0);
    let honest = controller.solve(victim).honest_power_w;
    let mut rows = Vec::new();
    for &pe in phase_errors_rad {
        for &ae in amplitude_errors {
            let residual = controller.residual_with_errors(victim, pe, ae);
            rows.push((pe, ae, residual / honest));
        }
    }
    rows
}

/// The two-wave superposition check the bench can do directly: measure the
/// three powers (each wave alone, then together) and report how far the
/// coherent sum deviates from naive addition. Returns
/// `(p1, p2, together, naive_sum)`.
pub fn superposition_check(params: &TestbedParams, delta_phase: f64) -> (f64, f64, f64, f64) {
    let mut meter = MeasurementNoise::new(params.seed.wrapping_add(2), params.meter_noise);
    let w1 = Wave::new(1.0, 0.0);
    let w2 = Wave::new(1.0, delta_phase);
    let p1 = meter.noisy_power(w1.solo_power());
    let p2 = meter.noisy_power(w2.solo_power());
    let together = meter.noisy_power(superposition::received_power(&[w1, w2]));
    (p1, p2, together, p1 + p2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn params() -> TestbedParams {
        TestbedParams::default()
    }

    #[test]
    fn phase_campaign_shows_null_at_pi() {
        let series = phase_offset_campaign(&params(), 181);
        let (x, ideal, measured) = series.samples[90];
        assert!((x - PI).abs() < 0.05);
        assert!(ideal < 1e-9);
        assert!(measured < 0.05, "measured null {measured}");
        // Peak at zero offset.
        assert!((series.samples[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_campaign_noise_is_bounded() {
        let series = phase_offset_campaign(&params(), 100);
        assert!(series.rms_error() < 0.1, "rms {}", series.rms_error());
        assert!(series.rms_error() > 0.0, "noise must actually perturb");
    }

    #[test]
    fn distance_campaign_fit_recovers_the_model() {
        let ds: Vec<f64> = (2..=30).map(|k| k as f64 * 0.1).collect();
        let (series, fit) = distance_campaign(&params(), &ds);
        assert_eq!(series.samples.len(), 29);
        let truth = wrsn_em::ChargeModel::powercast();
        assert!(
            (fit.alpha - truth.alpha()).abs() < 0.1,
            "alpha {}",
            fit.alpha
        );
        assert!((fit.beta - truth.beta()).abs() < 0.2, "beta {}", fit.beta);
        assert!(fit.r_squared > 0.9);
    }

    #[test]
    fn cancellation_residual_grows_with_error() {
        let rows = cancellation_robustness_campaign(&params(), &[0.0, 0.1, 0.3], &[0.0]);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].2 < rows[1].2 && rows[1].2 < rows[2].2);
        assert!(rows[0].2 < 1e-12, "perfect tuning → zero residual");
    }

    #[test]
    fn superposition_check_antiphase_destroys_power() {
        let (p1, p2, together, naive) = superposition_check(&params(), PI);
        assert!(p1 > 0.5 && p2 > 0.5);
        assert!(
            together < 0.1 * naive,
            "together {together} vs naive {naive}"
        );
    }

    #[test]
    fn superposition_check_in_phase_exceeds_naive() {
        let (_, _, together, naive) = superposition_check(&params(), 0.0);
        assert!(together > 1.5 * naive / 2.0, "constructive gain visible");
    }

    #[test]
    fn campaigns_are_reproducible() {
        let a = phase_offset_campaign(&params(), 50);
        let b = phase_offset_campaign(&params(), 50);
        assert_eq!(a, b);
    }
}
