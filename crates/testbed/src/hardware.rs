//! Emulated bill of materials for the benchtop.
//!
//! Parameters are chosen to be representative of the hardware this research
//! line reports: a Powercast TX91501-class 3 W / 915 MHz power transmitter,
//! and motes buffering harvested energy in a supercapacitor (hundreds of
//! joules) rather than a battery, so benchtop experiments complete in hours.

use serde::{Deserialize, Serialize};

use wrsn_em::{ChargeModel, Transmitter};
use wrsn_net::energy::{Battery, RadioEnergyModel};

/// Parameters of the emulated bench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestbedParams {
    /// Transmitter rated RF power, watts.
    pub tx_power_w: f64,
    /// Carrier frequency, hertz.
    pub freq_hz: f64,
    /// Supercap energy buffer per mote, joules.
    pub buffer_j: f64,
    /// Warning threshold as a fraction of the buffer.
    pub warning_fraction: f64,
    /// Mote sensing rate, bits per second.
    pub sensing_rate_bps: f64,
    /// Mote radio range on the bench, metres.
    pub comm_range_m: f64,
    /// Relative measurement-noise standard deviation of the power meter.
    pub meter_noise: f64,
    /// Measurement seed (campaigns are reproducible).
    pub seed: u64,
}

impl Default for TestbedParams {
    fn default() -> Self {
        TestbedParams {
            tx_power_w: 3.0,
            freq_hz: wrsn_em::constants::ISM_915MHZ,
            buffer_j: 300.0,
            warning_fraction: 0.2,
            sensing_rate_bps: 4_000.0,
            comm_range_m: 1.5,
            meter_noise: 0.04,
            seed: 2022,
        }
    }
}

impl TestbedParams {
    /// The transmitter this bench uses.
    pub fn transmitter(&self) -> Transmitter {
        Transmitter::new(ChargeModel::powercast(), self.freq_hz)
    }

    /// A fresh mote supercap.
    pub fn buffer(&self) -> Battery {
        Battery::new(self.buffer_j, self.buffer_j * self.warning_fraction)
    }

    /// The mote radio model — classical constants, but the bench motes idle
    /// hotter (debug UART, LEDs) so experiments finish quickly.
    pub fn radio(&self) -> RadioEnergyModel {
        RadioEnergyModel {
            idle_w: 5e-3,
            ..RadioEnergyModel::classical()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_physically_sane() {
        let p = TestbedParams::default();
        assert!(p.tx_power_w > 0.0);
        assert!(p.buffer_j > 0.0);
        assert!((0.0..1.0).contains(&p.warning_fraction));
        let b = p.buffer();
        assert_eq!(b.capacity_j(), 300.0);
        assert!(b.warning_j() < b.capacity_j());
    }

    #[test]
    fn transmitter_uses_configured_frequency() {
        let p = TestbedParams::default();
        let tx = p.transmitter();
        let expect = wrsn_em::constants::wavelength(p.freq_hz);
        assert!((tx.wavelength() - expect).abs() < 1e-12);
    }

    #[test]
    fn bench_radio_idles_hotter_than_field_radio() {
        let p = TestbedParams::default();
        assert!(p.radio().idle_w > RadioEnergyModel::classical().idle_w);
    }
}
