//! # wrsn-testbed — emulated benchtop experiments
//!
//! The paper validates the nonlinear-superposition effect and the end-to-end
//! attack on physical hardware (a Powercast-class transmitter and a handful
//! of rechargeable motes on a bench). We have no bench, so this crate
//! *emulates* one on top of the exact same physics code (`wrsn-em`) and
//! simulation loop (`wrsn-sim`) the large-scale experiments use, adding the
//! things a bench has and a clean simulation does not: measurement noise,
//! small supercap energy buffers, and sub-metre geometry.
//!
//! * [`hardware`] — the emulated bill of materials and its parameters,
//! * [`measure`] — the Section-II style measurement campaigns (received
//!   power vs. phase offset, vs. distance, cancellation depth vs. tuning
//!   error),
//! * [`mod@bench`] — the end-to-end 8-node experiment behind the paper's
//!   testbed table: per-node delivered energy and time-to-exhaustion under
//!   honest charging vs. the Charging Spoofing Attack, with detector
//!   verdicts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod hardware;
pub mod measure;

pub use bench::{run_bench_experiment, BenchOutcome, BenchRow};
pub use hardware::TestbedParams;
