//! # wrsn — Charging Spoofing Attacks on Wireless Rechargeable Sensor Networks
//!
//! A reproduction of *"Are You Really Charging Me?"* (Chi Lin et al., IEEE
//! ICDCS 2022): a mobile charger that *looks* like it is charging a sensor
//! node while the nonlinear superposition of its two transmit antennas
//! cancels the field at the victim, exhausting the network's key nodes
//! without tripping the operator's detectors.
//!
//! This facade crate re-exports the whole stack:
//!
//! | Crate | What it provides |
//! |---|---|
//! | [`em`] | phasor physics, the charging model, phase cancellation |
//! | [`net`] | deployments, batteries, routing, key-node identification |
//! | [`sim`] | the discrete-event world, mobile charger, policy trait |
//! | [`charge`] | benign charging policies (NJNP, periodic TSP, EDF) |
//! | [`core`] | TIDE, the CSA algorithm, baselines, detectors |
//! | [`testbed`] | the emulated benchtop experiments |
//!
//! and adds [`scenario`], the shared experiment world builder used by the
//! examples, the integration tests and the `wrsn-bench` harness.
//!
//! # Quickstart
//!
//! ```
//! use wrsn::scenario::{Deployment, Scenario};
//! use wrsn::core::prelude::*;
//!
//! // A 60-node network that has been running for a while.
//! let mut world = Scenario::paper_scale(60, 42).build();
//! let (report, outcome) = wrsn::core::attack::run_attack(
//!     &mut world,
//!     Scenario::paper_scale(60, 42).tide_config(),
//! )
//! .expect("attack run");
//! assert!(outcome.targeted > 0);
//! # let _ = report;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wrsn_charge as charge;
pub use wrsn_core as core;
pub use wrsn_em as em;
pub use wrsn_net as net;
pub use wrsn_sim as sim;
pub use wrsn_testbed as testbed;

pub mod scenario;
