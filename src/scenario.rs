//! Shared experiment scenarios.
//!
//! Every evaluation run — examples, integration tests, and all `wrsn-bench`
//! experiments — builds its world through [`Scenario`], so parameters are
//! stated once and sweeps vary exactly one knob at a time. The defaults model
//! a *mature* network: batteries at staggered mid-life levels, as after weeks
//! of operation, which is when charging requests (and attack windows) are
//! spread out in time.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use wrsn_core::tide::TideConfig;
use wrsn_net::energy::Battery;
use wrsn_net::node::SensorNode;
use wrsn_net::{deploy, Network, NodeId, Point, Region};
use wrsn_sim::{MobileCharger, World, WorldConfig};

/// How nodes are laid out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Deployment {
    /// Uniform random over the field.
    Uniform,
    /// Gaussian clusters (`count`, `sigma` metres).
    Clustered {
        /// Number of clusters.
        count: usize,
        /// Cluster standard deviation, metres.
        sigma: f64,
    },
    /// Two clusters joined by a thin bridge (pronounced key nodes).
    Corridor,
}

/// A parameterised experiment world.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Number of sensor nodes.
    pub num_nodes: usize,
    /// Square field side, metres.
    pub field_side_m: f64,
    /// Node communication range, metres.
    pub comm_range_m: f64,
    /// Node battery capacity, joules.
    pub battery_capacity_j: f64,
    /// Initial battery level range as fractions of capacity.
    pub level_range: (f64, f64),
    /// Deployment shape.
    pub deployment: Deployment,
    /// Charger travel speed, m/s.
    pub mc_speed_mps: f64,
    /// Charger energy budget, joules.
    pub mc_energy_j: f64,
    /// Simulation horizon, seconds.
    pub horizon_s: f64,
    /// Whether the world has a depot (at the sink) where the charger can swap
    /// its own battery. Off by default: the classical TIDE formulation uses a
    /// finite MC energy budget.
    pub depot: bool,
    /// RNG seed (deployment and levels).
    pub seed: u64,
}

impl Scenario {
    /// The evaluation's default scale: `n` nodes at constant density
    /// (~1 node / 100 m²), 20 m radio range, 2 kJ batteries at staggered
    /// mid-life levels.
    pub fn paper_scale(n: usize, seed: u64) -> Self {
        Scenario {
            num_nodes: n,
            field_side_m: (n as f64 * 100.0).sqrt(),
            comm_range_m: 20.0,
            battery_capacity_j: 2_000.0,
            level_range: (0.25, 0.8),
            deployment: Deployment::Uniform,
            mc_speed_mps: 5.0,
            mc_energy_j: 2.0e6,
            horizon_s: 2.0e6,
            depot: false,
            seed,
        }
    }

    /// Switches the deployment shape, returning the scenario.
    pub fn with_deployment(mut self, deployment: Deployment) -> Self {
        self.deployment = deployment;
        self
    }

    /// Enables the depot (battery swaps at the sink), returning the scenario.
    pub fn with_depot(mut self) -> Self {
        self.depot = true;
        self
    }

    /// The field region.
    pub fn region(&self) -> Region {
        Region::square(self.field_side_m)
    }

    /// The sink position (field centre).
    pub fn sink(&self) -> Point {
        self.region().center()
    }

    /// Builds the world: deployed nodes with staggered levels, charger parked
    /// at the sink.
    pub fn build(&self) -> World {
        let region = self.region();
        let raw = match self.deployment {
            Deployment::Uniform => deploy::uniform(&region, self.num_nodes, self.seed),
            Deployment::Clustered { count, sigma } => {
                deploy::clustered(&region, self.num_nodes, count, sigma, self.seed)
            }
            Deployment::Corridor => {
                let per = (self.num_nodes.saturating_sub(4)) / 2;
                deploy::corridor(
                    per.max(2),
                    self.num_nodes.saturating_sub(2 * per.max(2)).max(2),
                    self.seed,
                )
                .1
            }
        };
        let nodes: Vec<SensorNode> = raw
            .into_iter()
            .map(|n| {
                SensorNode::with_battery(
                    n.position(),
                    Battery::with_capacity(self.battery_capacity_j),
                )
            })
            .collect();
        let sink = match self.deployment {
            Deployment::Corridor => Point::new(10.0, 50.0),
            _ => self.sink(),
        };
        // Threaded adjacency build: identical network at any thread count,
        // ~linear speedup on the O(n) neighbour scan for large deployments.
        let net = Network::build_with_threads(
            nodes,
            sink,
            self.comm_range_m,
            wrsn_sim::parallel::threads(),
        );
        let charger = MobileCharger::standard(sink)
            .with_speed(self.mc_speed_mps)
            .with_energy(self.mc_energy_j);
        let mut world = World::new(
            net,
            charger,
            WorldConfig {
                horizon_s: self.horizon_s,
                depot: self.depot.then_some(sink),
                ..WorldConfig::default()
            },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(0x5eed));
        let (lo, hi) = self.level_range;
        for i in 0..world.network().node_count() {
            let frac = rng.gen_range(lo..hi);
            world
                .set_battery_level(NodeId(i), self.battery_capacity_j * frac)
                .expect("node exists");
        }
        world
    }

    /// The matching attack configuration (the charger fields are filled in at
    /// plan time from the live world).
    pub fn tide_config(&self) -> TideConfig {
        TideConfig {
            speed_mps: self.mc_speed_mps,
            budget_j: self.mc_energy_j,
            ..TideConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_per_seed() {
        let a = Scenario::paper_scale(40, 1).build();
        let b = Scenario::paper_scale(40, 1).build();
        for i in 0..a.network().node_count() {
            assert_eq!(a.network().positions()[i], b.network().positions()[i]);
            assert_eq!(a.network().levels_j()[i], b.network().levels_j()[i]);
        }
    }

    #[test]
    fn levels_are_inside_the_requested_range() {
        let s = Scenario::paper_scale(50, 7);
        let w = s.build();
        let net = w.network();
        for i in 0..net.node_count() {
            let frac = net.levels_j()[i] / net.capacities_j()[i];
            assert!(
                (s.level_range.0 - 1e-9..s.level_range.1 + 1e-9).contains(&frac),
                "frac = {frac}"
            );
        }
    }

    #[test]
    fn density_is_constant_across_sizes() {
        let d = |n: usize| {
            let s = Scenario::paper_scale(n, 0);
            n as f64 / s.region().area()
        };
        assert!((d(100) - d(400)).abs() < 1e-12);
    }

    #[test]
    fn corridor_deployment_builds() {
        let w = Scenario::paper_scale(24, 3)
            .with_deployment(Deployment::Corridor)
            .build();
        assert_eq!(w.network().node_count(), 24);
    }

    #[test]
    fn with_depot_enables_battery_swaps() {
        let s = Scenario::paper_scale(10, 3).with_depot();
        assert!(s.depot);
        let w = s.build();
        // The depot is at the sink; a recharge from anywhere succeeds.
        assert!(w.charger().capacity_j() > 0.0);
    }

    #[test]
    fn clustered_deployment_builds() {
        let w = Scenario::paper_scale(30, 3)
            .with_deployment(Deployment::Clustered {
                count: 3,
                sigma: 10.0,
            })
            .build();
        assert_eq!(w.network().node_count(), 30);
    }
}
