//! `wrsn` — the command-line front end.
//!
//! ```text
//! wrsn simulate --nodes 100 --seed 7 --policy csa --save run.json
//! wrsn simulate --nodes 100 --seed 7 --policy edf --depot
//! wrsn plan     --nodes 100 --seed 7            # dump the TIDE instance + CSA plan
//! wrsn audit    --load run.json                 # offline forensics on a snapshot
//! ```
//!
//! `simulate` runs a scenario under a named charger policy and prints the
//! report (optionally snapshotting the finished world to JSON); `plan` shows
//! what the attacker would compute without executing anything; `audit`
//! reloads a snapshot and runs every detector over it — the operator's
//! incident-response workflow.

use std::process::ExitCode;

use wrsn::core::attack::{CsaAttackPolicy, EagerSpoofPolicy, SelectiveNeglectPolicy};
use wrsn::core::csa;
use wrsn::core::detect::{self, FairnessAudit, PostMortemAudit};
use wrsn::core::tide::TideInstance;
use wrsn::scenario::Scenario;
use wrsn::sim::{ChargerPolicy, IdlePolicy, World};

const USAGE: &str = "\
usage:
  wrsn simulate --nodes <n> --seed <s> --policy <idle|njnp|edf|periodic|csa|eager|neglect>
                [--horizon <seconds>] [--depot] [--save <world.json>]
  wrsn plan     --nodes <n> --seed <s>
  wrsn audit    --load <world.json> [--victims <n1,n2,...>]
  wrsn list-policies";

#[derive(Debug, Default)]
struct Args {
    nodes: usize,
    seed: u64,
    policy: String,
    horizon_s: Option<f64>,
    depot: bool,
    save: Option<String>,
    load: Option<String>,
    victims: Vec<wrsn::net::NodeId>,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        nodes: 100,
        seed: 0,
        policy: "csa".to_string(),
        ..Args::default()
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
        };
        match args[i].as_str() {
            "--nodes" => out.nodes = take(&mut i)?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--seed" => out.seed = take(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--policy" => out.policy = take(&mut i)?,
            "--horizon" => {
                out.horizon_s = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|e| format!("--horizon: {e}"))?,
                )
            }
            "--depot" => out.depot = true,
            "--save" => out.save = Some(take(&mut i)?),
            "--load" => out.load = Some(take(&mut i)?),
            "--victims" => {
                out.victims = take(&mut i)?
                    .split(',')
                    .map(|t| t.trim().parse::<usize>().map(wrsn::net::NodeId))
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--victims: {e}"))?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    Ok(out)
}

fn make_policy(name: &str, scenario: &Scenario) -> Result<Box<dyn ChargerPolicy>, String> {
    Ok(match name {
        "idle" => Box::new(IdlePolicy),
        "njnp" => Box::new(wrsn::charge::Njnp::new()),
        "edf" => Box::new(wrsn::charge::EarliestDeadlineFirst::new()),
        "periodic" => Box::new(wrsn::charge::PeriodicTsp::new(scenario.sink(), 50_000.0)),
        "csa" => Box::new(CsaAttackPolicy::new(scenario.tide_config())),
        "eager" => Box::new(EagerSpoofPolicy::new(3_000.0)),
        "neglect" => Box::new(SelectiveNeglectPolicy::new()),
        other => {
            return Err(format!(
                "unknown policy `{other}`; try `wrsn list-policies`"
            ))
        }
    })
}

fn scenario_from(args: &Args) -> Scenario {
    let mut s = Scenario::paper_scale(args.nodes, args.seed);
    if let Some(h) = args.horizon_s {
        s.horizon_s = h;
    }
    s.depot = args.depot;
    s
}

fn simulate(args: &Args) -> Result<(), String> {
    let scenario = scenario_from(args);
    let mut world = scenario.build();
    let mut policy = make_policy(&args.policy, &scenario)?;
    let report = world
        .run(policy.as_mut())
        .map_err(|e| format!("simulation failed: {e}"))?;
    println!(
        "policy {:<18} nodes {:>4}  seed {:<4} horizon {:.1} h{}",
        report.policy_name,
        args.nodes,
        args.seed,
        report.horizon_s / 3600.0,
        if args.depot { "  (depot)" } else { "" }
    );
    println!(
        "  alive {}/{}  lifetime {}  sessions {}  depot visits {}",
        report.alive_nodes,
        report.alive_nodes + report.dead_nodes,
        report
            .network_lifetime_s
            .map(|t| format!("{:.1} h", t / 3600.0))
            .unwrap_or_else(|| "survived".into()),
        report.sessions,
        report.depot_visits,
    );
    println!(
        "  delivered {:.1} J  radiated {:.0} J  charger used {:.0} J",
        report.total_delivered_j, report.total_radiated_j, report.charger_energy_used_j
    );
    if let Some(path) = &args.save {
        let json = serde_json::to_string(&world).map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        println!("  snapshot saved to {path}");
    }
    Ok(())
}

fn plan(args: &Args) -> Result<(), String> {
    let scenario = scenario_from(args);
    let world = scenario.build();
    let instance = TideInstance::from_world(&world, &scenario.tide_config());
    println!(
        "TIDE instance: {} victims, total weight {:.1}, budget {:.0} kJ",
        instance.victim_count(),
        instance.total_weight(),
        instance.budget_j / 1e3
    );
    for v in &instance.victims {
        println!(
            "  {:>5}  weight {:>5.2}  window [{:>9.0}, {:>9.0}] s  masquerade {:>6.0} s  death {:>9.0} s",
            v.node.to_string(),
            v.weight,
            v.window.open_s,
            v.window.close_s,
            v.service_s,
            v.death_s
        );
    }
    let schedule = csa::plan(&instance);
    instance
        .validate(&schedule)
        .map_err(|e| format!("CSA emitted an invalid plan: {e}"))?;
    println!(
        "CSA plan: {} stops, utility {:.1}, energy {:.0} kJ",
        schedule.len(),
        instance.utility(&schedule),
        instance.energy_cost(&schedule) / 1e3
    );
    for (k, stop) in schedule.stops().iter().enumerate() {
        let v = &instance.victims[stop.victim];
        println!("  stop {k}: {} at t = {:.0} s", v.node, stop.begin_s);
    }
    Ok(())
}

fn audit(args: &Args) -> Result<(), String> {
    let path = args
        .load
        .as_ref()
        .ok_or("audit needs --load <world.json>")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let world: World = serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))?;
    println!(
        "snapshot: t = {:.1} h, {} sessions, {} deaths",
        world.time_s() / 3600.0,
        world.trace().sessions().len(),
        world.trace().death_times().len()
    );
    let mut detectors = detect::standard_detectors();
    detectors.push(Box::new(FairnessAudit::default()));
    detectors.push(Box::new(PostMortemAudit::default()));
    for detector in detectors {
        let report = detector.analyze(&world);
        print!(
            "  {:<22} {:>4} alarms",
            detector.name(),
            report.alarm_count()
        );
        if let Some(ratio) = report.detection_ratio(&args.victims) {
            print!(
                "   detection ratio on given victims: {:.0} %",
                ratio * 100.0
            );
        }
        println!();
        for alarm in report.alarms.iter().take(5) {
            println!(
                "      {} @ {:.0} s — {}",
                alarm.node, alarm.time_s, alarm.detail
            );
        }
        if report.alarm_count() > 5 {
            println!("      … and {} more", report.alarm_count() - 5);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "simulate" => parse(rest).and_then(|a| simulate(&a)),
        "plan" => parse(rest).and_then(|a| plan(&a)),
        "audit" => parse(rest).and_then(|a| audit(&a)),
        "list-policies" => {
            println!("idle njnp edf periodic csa eager neglect");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_simulate_flags() {
        let a = parse(&argv(
            "--nodes 60 --seed 4 --policy edf --depot --horizon 1000",
        ))
        .unwrap();
        assert_eq!(a.nodes, 60);
        assert_eq!(a.seed, 4);
        assert_eq!(a.policy, "edf");
        assert!(a.depot);
        assert_eq!(a.horizon_s, Some(1000.0));
    }

    #[test]
    fn parse_victims_list() {
        let a = parse(&argv("--victims 1,2,9")).unwrap();
        assert_eq!(
            a.victims,
            vec![
                wrsn::net::NodeId(1),
                wrsn::net::NodeId(2),
                wrsn::net::NodeId(9)
            ]
        );
    }

    #[test]
    fn parse_rejects_unknown_and_incomplete() {
        assert!(parse(&argv("--bogus")).is_err());
        assert!(parse(&argv("--nodes")).is_err());
        assert!(parse(&argv("--nodes abc")).is_err());
    }

    #[test]
    fn every_listed_policy_constructs() {
        let scenario = Scenario::paper_scale(10, 0);
        for name in ["idle", "njnp", "edf", "periodic", "csa", "eager", "neglect"] {
            assert!(make_policy(name, &scenario).is_ok(), "{name}");
        }
        assert!(make_policy("nope", &scenario).is_err());
    }
}
