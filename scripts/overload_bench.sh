#!/usr/bin/env bash
# Overload benchmark: boot `wrsnd` at deliberately small capacity (2 workers,
# queue cap 4, a 64 KiB result cache), drive it with a pipelined load well
# past that capacity, and record the run as BENCH_<label>.json — shed rate,
# retries, goodput (ok/s), and latency percentiles (p50/p99), plus the
# daemon's own counters. The load generator's contract checks gate the run:
# every shed request must eventually succeed and every response must be
# byte-identical to its digest, so a nonzero exit means the daemon corrupted
# or dropped work under pressure, not that it was merely slow.
#
# Usage: scripts/overload_bench.sh [label]
#   scripts/overload_bench.sh       -> BENCH_pr9.json
#   scripts/overload_bench.sh soak  -> BENCH_soak.json
# Knobs: WRSN_OVERLOAD_REQUESTS (default 400), WRSN_OVERLOAD_CONNS (16).
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-pr9}"
requests="${WRSN_OVERLOAD_REQUESTS:-400}"
conns="${WRSN_OVERLOAD_CONNS:-16}"
out="BENCH_${label}.json"

echo "== cargo build --release -p wrsn-bench"
cargo build --release -p wrsn-bench
wrsnd=target/release/wrsnd

store="$(mktemp -d)"
banner="$(mktemp)"
trap 'rm -rf "$store"; rm -f "$banner"' EXIT

# 2 workers with a 4-deep queue: 16 pipelining connections are ~2x+ the
# daemon's admission capacity, so a healthy fraction of the burst is shed
# and must land through retries. The small cache cap keeps eviction hot too.
"$wrsnd" serve --listen 127.0.0.1:0 --store "$store" --workers 2 \
  --queue-cap 4 --cache-cap-bytes 65536 --idle-timeout-s 60 \
  --max-requests 100000 > "$banner" 2>/dev/null &
svc_pid=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$banner" 2>/dev/null && break
  sleep 0.1
done
addr="$(sed -n 's/^wrsnd listening on //p' "$banner")"
[ -n "$addr" ] || { echo "wrsnd never printed its listen address" >&2; exit 1; }

echo "== wrsnd load: $requests requests over $conns conns at ~2x capacity"
"$wrsnd" load --connect "$addr" --requests "$requests" --conns "$conns" \
  --dup-frac 0.5 --stream-frac 0.25 --max-attempts 10 --deadline-s 120 \
  --seed 7 --json "$out" --shutdown \
  || { echo "overload contract checks failed" >&2; exit 1; }
wait "$svc_pid" || { echo "wrsnd daemon exited nonzero" >&2; exit 1; }

python3 - "$out" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
lat, ov = r["latency_ms"], r["overload"]
print(f"shed rate  : {ov['shed_rate']:.3f} ({ov['shed']} shed, {ov['retries']} retries)")
print(f"goodput    : {r['goodput_rps']:.1f} ok/s ({r['ok']}/{r['requests']} ok in {r['wall_s']:.2f}s)")
print(f"latency ms : p50 {lat['p50']:.1f}  p99 {lat['p99']:.1f}  max {lat['max']:.1f}")
print(f"stream     : {r['stream']['requests']} requests, {r['stream']['frames']} frames")
EOF
echo "Wrote $out"
