#!/usr/bin/env bash
# ROC benchmark: run the `arms_race` detection campaign (digital-twin +
# challenge-response audit vs. benign / naive-CSA / adaptive-CSA postures,
# swept over detector aggressiveness and fault-injection intensity) and
# record the grid as BENCH_<label>.json — detection rate, false-positive
# rate, time-to-detection, and probe overhead per cell, plus the pooled ROC
# operating points and an FNV-style digest of the CSV artifact bytes.
#
# Two contract gates fail the run (a nonzero exit means the detector
# regressed, not that the machine was slow):
#   * zero benign convictions at the lax and default presets, fault-injected
#     benign runs included;
#   * the default preset flags the naive CSA with detection rate >= 0.8
#     before 80% key-node exhaustion at zero fault noise.
#
# Usage: scripts/roc_bench.sh [label]
#   scripts/roc_bench.sh        -> BENCH_pr10.json
#   scripts/roc_bench.sh soak   -> BENCH_soak.json
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-pr10}"
out="BENCH_${label}.json"

echo "== cargo build --release -p wrsn-bench"
cargo build --release -p wrsn-bench

run_dir="$(mktemp -d)"
trap 'rm -rf "$run_dir"' EXIT

echo "== exp --id arms_race"
target/release/exp --id arms_race --out-dir "$run_dir" >/dev/null

python3 - "$run_dir/arms_race_0.csv" "$run_dir/arms_race_1.csv" "$out" <<'EOF'
import csv, hashlib, json, sys

roc_csv, summary_csv, out = sys.argv[1], sys.argv[2], sys.argv[3]
raw = open(roc_csv, "rb").read() + open(summary_csv, "rb").read()

def num(cell):
    return None if cell == "-" else float(cell)

cells = []
with open(roc_csv) as f:
    for row in csv.DictReader(f):
        cells.append({
            "detector": row["detector"],
            "policy": row["policy"],
            "faults": int(row["faults"]),
            "detect_rate": num(row["detect rate"]),
            "ttd_h": num(row["ttd (h)"]),
            "convictions": num(row["convictions"]),
            "probes": num(row["probes"]),
            "probe_cost_j": num(row["probe cost (J)"]),
            "key_exhausted": num(row["key exhausted"]),
            "attack_delivered_kj": num(row["attack delivered (kJ)"]),
        })
summary = list(csv.DictReader(open(summary_csv)))

# Contract gates (mirrors crates/bench/tests/golden_roc_digest.rs).
violations = []
for c in cells:
    if c["policy"] == "benign" and c["detector"] in ("lax", "default"):
        if c["convictions"] != 0.0:
            violations.append(f"benign convictions at {c['detector']}/faults={c['faults']}")
naive0 = next(c for c in cells
              if (c["detector"], c["policy"], c["faults"]) == ("default", "naive", 0))
if naive0["detect_rate"] < 0.8:
    violations.append(f"default/naive/0 detect rate {naive0['detect_rate']} < 0.8")
adapt0 = next(c for c in cells
              if (c["detector"], c["policy"], c["faults"]) == ("default", "adaptive", 0))
if not adapt0["detect_rate"] < naive0["detect_rate"]:
    violations.append("adaptive CSA did not lower detection at the default preset")
if not adapt0["attack_delivered_kj"] > 0.0:
    violations.append("adaptive CSA paid no real-energy bill")

report = {
    "bench": "arms_race ROC campaign",
    "artifact_sha256": hashlib.sha256(raw).hexdigest(),
    "cells": cells,
    "operating_points": [
        {"detector": r["detector"],
         "tpr_naive": float(r["tpr naive"]),
         "tpr_adaptive": float(r["tpr adaptive"]),
         "fpr_benign": float(r["fpr benign"])} for r in summary
    ],
    "violations": violations,
}
json.dump(report, open(out, "w"), indent=1)
open(out, "a").write("\n")

for p in report["operating_points"]:
    print(f"{p['detector']:>10}: tpr naive {p['tpr_naive']:.2f}  "
          f"tpr adaptive {p['tpr_adaptive']:.2f}  fpr benign {p['fpr_benign']:.2f}")
print(f"artifact digest: sha256 {report['artifact_sha256'][:16]}…")
if violations:
    print("CONTRACT VIOLATIONS:", *violations, sep="\n  ", file=sys.stderr)
    sys.exit(1)
EOF
echo "Wrote $out"
