#!/usr/bin/env bash
# Threads × shards scaling campaign for the `scale` experiment.
#
# Runs `exp --id scale` once per (threads, shards, size) cell — one size per
# invocation so the report's `world_run.execute` span is attributable to that
# size — and merges every cell into a single JSON report with the host's CPU
# count, so a curve measured on a 1-core container is never mistaken for a
# parallel-speedup claim.
#
# Usage: scripts/scale_sweep.sh [out.json]
#   scripts/scale_sweep.sh                 -> BENCH_sweep.json
#   scripts/scale_sweep.sh BENCH_pr8.json  -> BENCH_pr8.json
#
# Knobs (space/comma-separated lists):
#   WRSN_SWEEP_THREADS  worker threads per cell   (default "1 2 4 8")
#   WRSN_SWEEP_SHARDS   spatial shards per cell   (default "1 8 32")
#   WRSN_SWEEP_SIZES    network sizes per cell    (default "100000 500000 1000000")
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_sweep.json}"
threads_list="${WRSN_SWEEP_THREADS:-1 2 4 8}"
shards_list="${WRSN_SWEEP_SHARDS:-1 8 32}"
sizes_list="${WRSN_SWEEP_SIZES:-100000 500000 1000000}"
# Accept commas as separators too.
threads_list="${threads_list//,/ }"
shards_list="${shards_list//,/ }"
sizes_list="${sizes_list//,/ }"

echo "== cargo build --release -p wrsn-bench"
cargo build --release -p wrsn-bench -q

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cells=()
for size in $sizes_list; do
  for shards in $shards_list; do
    for threads in $threads_list; do
      cell="$tmp/n${size}_s${shards}_t${threads}.json"
      echo "== scale n=$size shards=$shards threads=$threads"
      WRSN_SCALE_SIZES="$size" WRSN_SHARDS="$shards" WRSN_THREADS="$threads" \
        ./target/release/exp --id scale --out-dir "$tmp/out" \
        --json "$cell" > /dev/null
      cells+=("$cell")
    done
  done
done

python3 - "$out" "${cells[@]}" <<'EOF'
import json, os, re, sys

out_path, *cell_paths = sys.argv[1:]
rows, git_rev = [], None
for path in cell_paths:
    with open(path) as fh:
        report = json.load(fh)
    git_rev = report.get("git_rev", git_rev)
    exp = next(e for e in report["experiments"] if e["id"] == "scale")
    spans = {s["path"]: s["total_s"] for s in exp.get("spans", [])}
    size = next(
        int(m.group(1))
        for p in spans
        if (m := re.fullmatch(r"scale_n(\d+)", p))
    )
    rows.append({
        "nodes": size,
        "threads": exp["threads"],
        "shards": exp["shards"],
        "wall_s": exp["wall_s"],
        "scale_total_s": spans.get(f"scale_n{size}"),
        "world_run_s": spans.get(f"scale_n{size}.world_run"),
        "execute_s": spans.get(f"scale_n{size}.world_run.execute"),
    })

rows.sort(key=lambda r: (r["nodes"], r["shards"], r["threads"]))
report = {
    "host_cpus": os.cpu_count(),
    "git_rev": git_rev,
    "rows": rows,
}
# Per-size speedup of the execute span relative to the threads=1 cell at the
# same shard count: the honest headline for the parallel shard executor.
for row in rows:
    base = next(
        (r for r in rows
         if r["nodes"] == row["nodes"] and r["shards"] == row["shards"]
         and r["threads"] == 1),
        None,
    )
    if base and base["execute_s"] and row["execute_s"]:
        row["execute_speedup_vs_t1"] = round(base["execute_s"] / row["execute_s"], 3)

with open(out_path, "w") as fh:
    json.dump(report, fh, indent=1)
    fh.write("\n")
print(f"wrote {out_path}: {len(rows)} cells, host_cpus={report['host_cpus']}")
EOF
