#!/usr/bin/env bash
# Timing baseline: release-build the experiment harness and record wall-clock
# timings as BENCH_<label>.json (single-threaded) and BENCH_<label>_t<N>.json
# (N worker threads, default: all cores).
#
# Usage: scripts/bench.sh [label] [threads]
#   scripts/bench.sh            -> BENCH_local.json + BENCH_local_t<nproc>.json
#   scripts/bench.sh pr3        -> BENCH_pr3.json + BENCH_pr3_t<nproc>.json
#   scripts/bench.sh pr3 8      -> BENCH_pr3.json + BENCH_pr3_t8.json
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-local}"
threads="${2:-$(nproc)}"

echo "== cargo build --release -p wrsn-bench"
cargo build --release -p wrsn-bench

echo "== exp --id all --threads 1 -> BENCH_${label}.json"
./target/release/exp --id all --threads 1 --json "BENCH_${label}.json" > /dev/null

echo "== exp --id all --threads ${threads} -> BENCH_${label}_t${threads}.json"
./target/release/exp --id all --threads "${threads}" \
  --json "BENCH_${label}_t${threads}.json" > /dev/null

echo "Wrote BENCH_${label}.json and BENCH_${label}_t${threads}.json"
