#!/usr/bin/env bash
# Timing baseline: release-build the experiment harness and record wall-clock
# timings as BENCH_<label>.json (single-threaded) and BENCH_<label>_t<N>.json
# (N worker threads, default: all cores).
#
# Each configuration runs TRIALS times (default 3); the kept report is the
# trial with the median suite wall time, so one noisy neighbour can't skew
# a checked-in baseline. Set WRSN_BENCH_IDS to bench a different id list
# (e.g. "all,scale" to append the million-node scaling curve).
#
# Usage: scripts/bench.sh [label] [threads]
#   scripts/bench.sh            -> BENCH_local.json + BENCH_local_t<nproc>.json
#   scripts/bench.sh pr3        -> BENCH_pr3.json + BENCH_pr3_t<nproc>.json
#   scripts/bench.sh pr3 8      -> BENCH_pr3.json + BENCH_pr3_t8.json
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-local}"
threads="${2:-$(nproc)}"
trials="${TRIALS:-3}"
ids="${WRSN_BENCH_IDS:-all}"

if [ "$trials" -lt 3 ]; then
  echo "TRIALS must be >= 3 (got $trials)" >&2
  exit 1
fi

echo "== cargo build --release -p wrsn-bench"
cargo build --release -p wrsn-bench

# Runs `exp` $trials times with $1 threads and keeps the trial with the
# median suite wall time at $2.
run_median() {
  local nthreads="$1" out="$2"
  local tmp walls=()
  tmp="$(mktemp -d)"
  for t in $(seq 1 "$trials"); do
    ./target/release/exp --id "$ids" --threads "$nthreads" \
      --json "$tmp/trial$t.json" > /dev/null
    walls+=("$(python3 -c "
import json, sys
print(sum(e['wall_s'] for e in json.load(open(sys.argv[1]))['experiments']))
" "$tmp/trial$t.json")")
  done
  local median_trial
  median_trial="$(python3 -c "
import sys
walls = sorted(enumerate(float(w) for w in sys.argv[1:]), key=lambda p: p[1])
idx, wall = walls[len(walls) // 2]
print(idx + 1)
print('   trials:', ' '.join(f'{w:.3f}s' for _, w in walls),
      f'-> median {wall:.3f}s', file=sys.stderr)
" "${walls[@]}")"
  cp "$tmp/trial$median_trial.json" "$out"
  rm -rf "$tmp"
}

echo "== exp --id $ids --threads 1 x$trials -> BENCH_${label}.json (median)"
run_median 1 "BENCH_${label}.json"

echo "== exp --id $ids --threads $threads x$trials -> BENCH_${label}_t${threads}.json (median)"
run_median "$threads" "BENCH_${label}_t${threads}.json"

echo "Wrote BENCH_${label}.json and BENCH_${label}_t${threads}.json"
