#!/usr/bin/env bash
# Local CI: formatting, lints, and the full test suite.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== release golden digest (fig9 + fig13 byte-identity)"
cargo test --release -p wrsn-bench --test golden_exp_digest -q

echo "== trace export smoke test"
trace_file="$(mktemp)"
trap 'rm -f "$trace_file"' EXIT
cargo run -p wrsn-bench --release --bin exp -- --id fig2 --trace "$trace_file" >/dev/null
test -s "$trace_file" || { echo "trace file is empty" >&2; exit 1; }
head -n 1 "$trace_file" | grep -q '^{"v":1,"record":{"Meta":' \
  || { echo "trace does not start with a versioned Meta record" >&2; exit 1; }
tail -n 1 "$trace_file" | grep -q '"Counters"' \
  || { echo "trace does not end with a Counters record" >&2; exit 1; }

echo "== fault-injection smoke test (seeded, byte-identical)"
faults_a="$(mktemp)"
faults_b="$(mktemp)"
trap 'rm -f "$trace_file" "$faults_a" "$faults_b"' EXIT
cargo run -p wrsn-bench --release --bin exp -- --id faults > "$faults_a"
cargo run -p wrsn-bench --release --bin exp -- --id faults > "$faults_b"
cmp -s "$faults_a" "$faults_b" \
  || { echo "exp --id faults is not byte-identical across runs" >&2; exit 1; }

echo "== forced-worker-panic graceful degradation"
# One poisoned experiment must not sink the campaign: healthy experiments
# still print, the failure is reported per-experiment, and the exit is != 0.
panic_out="$(mktemp)"
panic_err="$(mktemp)"
trap 'rm -f "$trace_file" "$faults_a" "$faults_b" "$panic_out" "$panic_err"' EXIT
if WRSN_FORCE_PANIC=fig2 cargo run -p wrsn-bench --release --bin exp -- \
    --id all > "$panic_out" 2> "$panic_err"; then
  echo "exp --id all must fail when an experiment panics" >&2; exit 1
fi
grep -q "fig2.*panicked" "$panic_err" \
  || { echo "missing per-experiment failure report" >&2; exit 1; }
grep -q "## fig3" "$panic_out" \
  || { echo "healthy experiments must still produce output" >&2; exit 1; }

echo "All checks passed."
