#!/usr/bin/env bash
# Local CI: formatting, lints, and the full test suite.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== release golden digest (fig9 + fig13 byte-identity)"
cargo test --release -p wrsn-bench --test golden_exp_digest -q

echo "== trace export smoke test"
trace_file="$(mktemp)"
trap 'rm -f "$trace_file"' EXIT
cargo run -p wrsn-bench --release --bin exp -- --id fig2 --trace "$trace_file" >/dev/null
test -s "$trace_file" || { echo "trace file is empty" >&2; exit 1; }
head -n 1 "$trace_file" | grep -q '^{"v":1,"record":{"Meta":' \
  || { echo "trace does not start with a versioned Meta record" >&2; exit 1; }
tail -n 1 "$trace_file" | grep -q '"Counters"' \
  || { echo "trace does not end with a Counters record" >&2; exit 1; }

echo "All checks passed."
