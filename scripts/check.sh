#!/usr/bin/env bash
# Local CI: formatting, lints, and the full test suite.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== release golden digest (fig9 + fig13 byte-identity)"
cargo test --release -p wrsn-bench --test golden_exp_digest -q

echo "== release golden digest (scale 10k byte-identity)"
cargo test --release -p wrsn-bench --test golden_scale_digest -q

echo "== release golden digest (arms_race ROC artifact + detection contract)"
# Pins the ROC artifact bytes and gates the semantic contract: zero benign
# convictions at lax/default aggressiveness (fault-injected runs included),
# naive-CSA detection >= 0.8 at the default preset, and a cheaper-but-paid
# stealth evasion.
cargo test --release -p wrsn-bench --test golden_roc_digest -q

echo "== scale-smoke: 10k nodes, shard counts 1 and 8, identical traces"
# Spatial sharding is a pure execution strategy: the scale experiment's full
# trace must be byte-identical at any shard count.
scale_a="$(mktemp)"
scale_b="$(mktemp)"
scale_dir="$(mktemp -d)"
WRSN_SCALE_SIZES=10000 WRSN_SHARDS=1 WRSN_THREADS=1 \
  cargo run -p wrsn-bench --release --bin exp -- \
  --id scale --out-dir "$scale_dir/s1" --trace "$scale_a" >/dev/null
WRSN_SCALE_SIZES=10000 WRSN_SHARDS=8 WRSN_THREADS=1 \
  cargo run -p wrsn-bench --release --bin exp -- \
  --id scale --out-dir "$scale_dir/s8" --trace "$scale_b" >/dev/null
cmp -s "$scale_a" "$scale_b" \
  || { echo "scale trace differs between shard counts 1 and 8" >&2; exit 1; }

echo "== scale-smoke: 10k nodes, thread counts 1 and 8 (shards 8), identical traces"
# Parallel shard execution is a pure execution strategy too: fanning the
# sharded segment kernel over worker threads must keep the full trace
# byte-identical at any thread count.
scale_t8="$(mktemp)"
WRSN_SCALE_SIZES=10000 WRSN_SHARDS=8 WRSN_THREADS=8 \
  cargo run -p wrsn-bench --release --bin exp -- \
  --id scale --out-dir "$scale_dir/t8" --trace "$scale_t8" >/dev/null
cmp -s "$scale_b" "$scale_t8" \
  || { echo "scale trace differs between thread counts 1 and 8" >&2; exit 1; }
rm -rf "$scale_a" "$scale_b" "$scale_t8" "$scale_dir"

echo "== arms-race smoke: thread counts 1 and 4, identical ROC artifacts"
# The online audit is serial in-world code: the full ROC artifact (grid +
# summary CSVs) must be byte-identical at any worker-thread count, and no
# benign row may ever convict at the lax/default presets.
arms_dir="$(mktemp -d)"
WRSN_THREADS=1 cargo run -p wrsn-bench --release --bin exp -- \
  --id arms_race --out-dir "$arms_dir/t1" >/dev/null
WRSN_THREADS=4 cargo run -p wrsn-bench --release --bin exp -- \
  --id arms_race --out-dir "$arms_dir/t4" >/dev/null
for csv in "$arms_dir"/t1/arms_race_*.csv; do
  cmp -s "$csv" "$arms_dir/t4/$(basename "$csv")" \
    || { echo "ROC artifact $(basename "$csv") differs between thread counts 1 and 4" >&2; exit 1; }
done
if awk -F, '$1 ~ /^(lax|default)$/ && $2 == "benign" && $6 != "0.0"' \
    "$arms_dir/t1/arms_race_0.csv" | grep -q .; then
  echo "benign run convicted at lax/default detector aggressiveness" >&2; exit 1
fi
rm -rf "$arms_dir"

echo "== trace export smoke test"
trace_file="$(mktemp)"
trap 'rm -f "$trace_file"' EXIT
cargo run -p wrsn-bench --release --bin exp -- --id fig2 --trace "$trace_file" >/dev/null
test -s "$trace_file" || { echo "trace file is empty" >&2; exit 1; }
head -n 1 "$trace_file" | grep -q '^{"v":1,"record":{"Meta":' \
  || { echo "trace does not start with a versioned Meta record" >&2; exit 1; }
tail -n 1 "$trace_file" | grep -q '"Counters"' \
  || { echo "trace does not end with a Counters record" >&2; exit 1; }

echo "== fault-injection smoke test (seeded, byte-identical)"
faults_a="$(mktemp)"
faults_b="$(mktemp)"
trap 'rm -f "$trace_file" "$faults_a" "$faults_b"' EXIT
cargo run -p wrsn-bench --release --bin exp -- --id faults > "$faults_a"
cargo run -p wrsn-bench --release --bin exp -- --id faults > "$faults_b"
cmp -s "$faults_a" "$faults_b" \
  || { echo "exp --id faults is not byte-identical across runs" >&2; exit 1; }

echo "== forced-worker-panic graceful degradation"
# One poisoned experiment must not sink the campaign: healthy experiments
# still print, the failure is reported per-experiment, and the exit is != 0.
panic_out="$(mktemp)"
panic_err="$(mktemp)"
trap 'rm -f "$trace_file" "$faults_a" "$faults_b" "$panic_out" "$panic_err"' EXIT
if WRSN_FORCE_PANIC=fig2 cargo run -p wrsn-bench --release --bin exp -- \
    --id all > "$panic_out" 2> "$panic_err"; then
  echo "exp --id all must fail when an experiment panics" >&2; exit 1
fi
grep -q "fig2.*panicked" "$panic_err" \
  || { echo "missing per-experiment failure report" >&2; exit 1; }
grep -q "## fig3" "$panic_out" \
  || { echo "healthy experiments must still produce output" >&2; exit 1; }

echo "== durable runs: kill-and-resume byte-identity"
# SIGKILL the campaign mid-run (a forced hang keeps the process alive until
# we kill it), resume from the manifest, and require the resumed transcript,
# CSVs, and JSONL trace to be byte-identical to an uninterrupted golden run.
# tab1 is excluded from the byte comparison: it reports measured wall-clock
# timings, which differ between any two runs, interrupted or not.
cargo build --release -p wrsn-bench -q
exp=target/release/exp
gold_dir="$(mktemp -d)"
run_dir="$(mktemp -d)"
hang_out="$(mktemp)"
hang_err="$(mktemp)"
trap 'rm -f "$trace_file" "$faults_a" "$faults_b" "$panic_out" "$panic_err" \
  "$hang_out" "$hang_err"; rm -rf "$gold_dir" "$run_dir"' EXIT
"$exp" --id all --out-dir "$gold_dir" --trace "$gold_dir/trace.jsonl" \
  > "$gold_dir/out.txt" 2>/dev/null
WRSN_FORCE_HANG=tab1 "$exp" --id all --out-dir "$run_dir" \
  --trace "$run_dir/trace.jsonl" > "$run_dir/out1.txt" 2>/dev/null &
victim=$!
done_count=0
for _ in $(seq 1 600); do
  done_count=$(grep -o '"status":"Done"' "$run_dir/manifest.json" 2>/dev/null | wc -l || true)
  if [ "$done_count" -ge 4 ]; then break; fi
  sleep 0.1
done
kill -9 "$victim" 2>/dev/null || true
wait "$victim" 2>/dev/null || true
[ "$done_count" -ge 1 ] \
  || { echo "no experiment completed before the SIGKILL" >&2; exit 1; }
"$exp" --resume "$run_dir" --trace "$run_dir/trace.jsonl" \
  > "$run_dir/out2.txt" 2>/dev/null
filter_tab1() { awk '/^## tab1/{skip=1} /^## /{if ($0 !~ /^## tab1/) skip=0} !skip' "$1"; }
cmp <(filter_tab1 "$gold_dir/out.txt") <(filter_tab1 "$run_dir/out2.txt") \
  || { echo "resumed transcript differs from the uninterrupted run" >&2; exit 1; }
cmp "$gold_dir/trace.jsonl" "$run_dir/trace.jsonl" \
  || { echo "resumed trace differs from the uninterrupted run" >&2; exit 1; }
for csv in "$gold_dir"/*.csv; do
  base="$(basename "$csv")"
  case "$base" in tab1_*) continue ;; esac
  cmp "$csv" "$run_dir/$base" \
    || { echo "resumed CSV $base differs from the uninterrupted run" >&2; exit 1; }
done
grep -q '"resumes":1' "$run_dir/manifest.json" \
  || { echo "manifest does not record the resume" >&2; exit 1; }

echo "== durable runs: forced-hang watchdog timeout"
# A hung experiment must be cancelled at its wall-clock deadline and reported
# as a typed timeout while every other experiment still completes.
hang_dir="$run_dir/hang"
if WRSN_FORCE_HANG=fig5 "$exp" --id all --timeout-s 10 --out-dir "$hang_dir" \
    > "$hang_out" 2> "$hang_err"; then
  echo "exp --id all must fail when an experiment hangs past its deadline" >&2
  exit 1
fi
grep -q "fig5.*timed out" "$hang_err" \
  || { echo "missing typed timeout failure report" >&2; exit 1; }
grep -q "## fig3" "$hang_out" \
  || { echo "healthy experiments must still produce output" >&2; exit 1; }
grep -q '"failure":"Timeout"' "$hang_dir/manifest.json" \
  || { echo "manifest does not record the timeout" >&2; exit 1; }

echo "== wrsnd campaign service: load-gen smoke"
# Boot the daemon, drive it with a bounded deterministic load, and let the
# load generator's own contract checks gate: every request answered ok,
# duplicate digests byte-identical, daemon output for fig2 identical to an
# in-process run, nothing stuck past its deadline. --max-requests caps the
# daemon's lifetime so a wedged run cannot orphan it.
svc_store="$(mktemp -d)"
svc_banner="$(mktemp)"
trap 'rm -f "$trace_file" "$faults_a" "$faults_b" "$panic_out" "$panic_err" \
  "$hang_out" "$hang_err" "$svc_banner"; rm -rf "$gold_dir" "$run_dir" "$svc_store"' EXIT
wrsnd=target/release/wrsnd
"$wrsnd" serve --listen 127.0.0.1:0 --store "$svc_store" --max-requests 2000 \
  > "$svc_banner" 2>/dev/null &
svc_pid=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$svc_banner" 2>/dev/null && break
  sleep 0.1
done
svc_addr="$(sed -n 's/^wrsnd listening on //p' "$svc_banner")"
[ -n "$svc_addr" ] || { echo "wrsnd never printed its listen address" >&2; exit 1; }
"$wrsnd" load --connect "$svc_addr" --requests 400 --conns 8 --dup-frac 0.5 \
  --deadline-s 120 --verify-exp fig2 --shutdown \
  || { echo "wrsnd load-gen contract checks failed" >&2; exit 1; }
wait "$svc_pid" \
  || { echo "wrsnd daemon exited nonzero" >&2; exit 1; }

echo "== wrsnd chaos smoke: load through the fault-injecting proxy"
# Boot a small-capacity daemon behind the chaos proxy (seeded connection
# drops, mid-stream truncations, stalls) and drive a mixed streamed/plain
# load through it. The load generator's contract checks gate: despite
# shedding, drops, and stalls, every request eventually succeeds and every
# response is byte-identical to its digest — the daemon never crashes,
# corrupts, or stops serving.
chaos_store="$(mktemp -d)"
chaos_svc_banner="$(mktemp)"
chaos_banner="$(mktemp)"
trap 'rm -f "$trace_file" "$faults_a" "$faults_b" "$panic_out" "$panic_err" \
  "$hang_out" "$hang_err" "$svc_banner" "$chaos_svc_banner" "$chaos_banner"; \
  rm -rf "$gold_dir" "$run_dir" "$svc_store" "$chaos_store"' EXIT
"$wrsnd" serve --listen 127.0.0.1:0 --store "$chaos_store" --workers 2 \
  --queue-cap 4 --cache-cap-bytes 65536 --max-requests 4000 \
  > "$chaos_svc_banner" 2>/dev/null &
chaos_svc_pid=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$chaos_svc_banner" 2>/dev/null && break
  sleep 0.1
done
chaos_svc_addr="$(sed -n 's/^wrsnd listening on //p' "$chaos_svc_banner")"
[ -n "$chaos_svc_addr" ] || { echo "wrsnd never printed its listen address" >&2; exit 1; }
"$wrsnd" chaos --listen 127.0.0.1:0 --upstream "$chaos_svc_addr" --seed 42 \
  > "$chaos_banner" 2>/dev/null &
chaos_pid=$!
for _ in $(seq 1 100); do
  grep -q "chaos listening on" "$chaos_banner" 2>/dev/null && break
  sleep 0.1
done
chaos_addr="$(sed -n 's/^wrsnd chaos listening on \(.*\) -> .*$/\1/p' "$chaos_banner")"
[ -n "$chaos_addr" ] || { echo "chaos proxy never printed its listen address" >&2; exit 1; }
"$wrsnd" load --connect "$chaos_addr" --requests 80 --conns 4 --dup-frac 0.4 \
  --stream-frac 0.25 --max-attempts 10 --deadline-s 120 --seed 7 \
  || { echo "chaos-proxy load contract checks failed" >&2; exit 1; }
kill "$chaos_pid" 2>/dev/null || true
wait "$chaos_pid" 2>/dev/null || true
# Shut the daemon down directly (not through the proxy) to prove it is
# still fully responsive after the chaos run.
"$wrsnd" load --connect "$chaos_svc_addr" --requests 1 --shutdown \
  || { echo "daemon unresponsive after chaos run" >&2; exit 1; }
wait "$chaos_svc_pid" \
  || { echo "wrsnd daemon exited nonzero after chaos run" >&2; exit 1; }

echo "All checks passed."
